//! The workspace call graph and the `wall-clock-reach` analysis.
//!
//! `nondeterminism` (a line rule) sees `Instant` *mentioned* in a
//! simulation crate; it cannot see `Instant` *reached* through a chain
//! of workspace helpers. This module builds a conservative call graph
//! over [`crate::model::FileModel`]s — nodes are non-test functions,
//! edges are call sites resolved by name — and walks it from every
//! `pub` simulation-crate function toward nondeterminism sinks: wall
//! clocks, OS entropy, thread spawning, and environment reads.
//!
//! The `obs` crate is the one sanctioned gateway (DESIGN.md §11): it is
//! observation-only and may own `Instant`, so edges into it — whether
//! written `obs::add(...)` or resolved to a function defined under
//! `crates/obs/` — are never traversed. Reachability *stops at the obs
//! boundary*.
//!
//! Name resolution is deliberately conservative: a call edge exists
//! only when the callee name is defined exactly once in the scanned
//! files (and, for method calls, is not a ubiquitous std name). A
//! missed edge means a missed finding, never a false one — the rule is
//! a ratchet, not a proof.

use crate::diag::Diagnostic;
use crate::model::FileModel;
use std::collections::{BTreeMap, VecDeque};
use std::path::Path;

/// Sinks that make a function nondeterministic if reached. Each entry
/// is (identifier, required `::`-path prefix, description, covered by
/// the `nondeterminism` line rule).
struct Sink {
    ident: &'static str,
    /// When `Some(p)`, the call/token must appear as `p::ident`.
    prefix: Option<&'static str>,
    what: &'static str,
    /// Sinks the `nondeterminism` line rule already flags directly are
    /// only reported here when reached *indirectly* (chain length >= 2),
    /// so one bug never produces two diagnostics.
    line_rule_covers: bool,
}

const SINKS: &[Sink] = &[
    Sink {
        ident: "Instant",
        prefix: None,
        what: "wall-clock time (`Instant`)",
        line_rule_covers: true,
    },
    Sink {
        ident: "SystemTime",
        prefix: None,
        what: "wall-clock time (`SystemTime`)",
        line_rule_covers: true,
    },
    Sink {
        ident: "thread_rng",
        prefix: None,
        what: "entropy-seeded RNG (`thread_rng`)",
        line_rule_covers: true,
    },
    Sink {
        ident: "from_entropy",
        prefix: None,
        what: "entropy-seeded RNG (`from_entropy`)",
        line_rule_covers: true,
    },
    Sink {
        ident: "from_os_rng",
        prefix: None,
        what: "entropy-seeded RNG (`from_os_rng`)",
        line_rule_covers: true,
    },
    Sink {
        ident: "spawn",
        prefix: Some("thread"),
        what: "thread spawning (`thread::spawn`)",
        line_rule_covers: false,
    },
    Sink {
        ident: "var",
        prefix: Some("env"),
        what: "environment read (`env::var`)",
        line_rule_covers: false,
    },
    Sink {
        ident: "var_os",
        prefix: Some("env"),
        what: "environment read (`env::var_os`)",
        line_rule_covers: false,
    },
    Sink {
        ident: "vars",
        prefix: Some("env"),
        what: "environment read (`env::vars`)",
        line_rule_covers: false,
    },
];

/// Method names too ubiquitous to resolve by bare name: an edge through
/// one of these would almost always point at the wrong definition.
const METHOD_RESOLVE_DENYLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "fmt",
    "next",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "get",
    "iter",
    "into_iter",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "min",
    "max",
    "abs",
    "cmp",
    "eq",
    "to_string",
    "collect",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "build",
    "run",
    "step",
    "reset",
    "update",
];

/// The simulation crates whose public functions are reachability roots.
pub fn in_simulation_src(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    ["netsim", "tcp", "probes", "testbed", "core"]
        .iter()
        .any(|c| p.contains(&format!("crates/{c}/src/")))
}

/// Whether a path lies in the sanctioned telemetry gateway crate.
pub fn in_obs_crate(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    p.contains("crates/obs/")
}

/// Runs the `wall-clock-reach` analysis over a set of file models.
///
/// With `treat_all_as_sim`, every non-test `pub fn` is a root — used
/// when the CLI is pointed at an explicit file (all rules' opinions are
/// wanted regardless of where the file lives, e.g. fixtures).
pub fn check(files: &[FileModel], treat_all_as_sim: bool) -> Vec<Diagnostic> {
    // Node ids: (file index, fn index), in deterministic scan order.
    let mut name_to_nodes: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, fm) in files.iter().enumerate() {
        for (ni, f) in fm.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            name_to_nodes.entry(&f.name).or_default().push((fi, ni));
        }
    }

    // Direct sink containment per node (never in obs: it is sanctioned).
    let sink_of = |fi: usize, ni: usize| -> Option<&'static Sink> {
        let fm = &files[fi];
        if in_obs_crate(&fm.path) {
            return None;
        }
        let f = &fm.fns[ni];
        let body = &fm.toks[f.body.clone()];
        for (j, t) in body.iter().enumerate() {
            for sink in SINKS {
                if t.text != sink.ident {
                    continue;
                }
                match sink.prefix {
                    None => return Some(sink),
                    Some(p) => {
                        if j >= 2 && body[j - 1].is_punct("::") && body[j - 2].is_ident(p) {
                            return Some(sink);
                        }
                    }
                }
            }
        }
        None
    };

    // Edges, resolved by unique name. Calls into obs (by path or by
    // resolved definition) are dropped: the gateway is opaque.
    let mut edges: BTreeMap<(usize, usize), Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, fm) in files.iter().enumerate() {
        for (ni, f) in fm.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let mut out = Vec::new();
            for call in &f.calls {
                if call.path.iter().any(|seg| seg == "obs") {
                    continue; // explicit gateway call
                }
                if call.is_method && METHOD_RESOLVE_DENYLIST.contains(&call.name.as_str()) {
                    continue;
                }
                let Some(cands) = name_to_nodes.get(call.name.as_str()) else {
                    continue;
                };
                if cands.len() != 1 {
                    continue; // ambiguous — refuse to guess
                }
                let (tfi, tni) = cands[0];
                if in_obs_crate(&files[tfi].path) {
                    continue; // resolved into the gateway — stop here
                }
                out.push((tfi, tni));
            }
            out.sort_unstable();
            out.dedup();
            edges.insert((fi, ni), out);
        }
    }

    // BFS from each root, shortest chain to any sink.
    let mut diags = Vec::new();
    for (fi, fm) in files.iter().enumerate() {
        let is_sim = treat_all_as_sim || in_simulation_src(&fm.path);
        if !is_sim || in_obs_crate(&fm.path) {
            continue;
        }
        for (ni, f) in fm.fns.iter().enumerate() {
            if f.is_test || !f.is_pub {
                continue;
            }
            let Some((chain, sink)) = shortest_sink_chain(&edges, (fi, ni), &sink_of) else {
                continue;
            };
            // Direct containment of a line-rule-covered sink is already
            // reported by `nondeterminism`; only chains add information.
            if chain.len() == 1 && sink.line_rule_covers {
                continue;
            }
            let names: Vec<String> = chain
                .iter()
                .map(|&(cfi, cni)| files[cfi].fns[cni].qualified())
                .collect();
            diags.push(
                Diagnostic::error(
                    fm.path.clone(),
                    f.line,
                    1,
                    "wall-clock-reach",
                    format!(
                        "pub fn `{}` reaches {} via `{}`; simulation code must stay a pure \
                         function of its inputs",
                        f.qualified(),
                        sink.what,
                        names.join(" -> "),
                    ),
                )
                .with_hint(
                    "route timing through obs's name-based API (DESIGN.md §11) or cut the call",
                ),
            );
        }
    }
    diags
}

/// Breadth-first search for the shortest call chain from `root` to any
/// sink-containing node. Returns the chain (root first) and the sink.
fn shortest_sink_chain<'s>(
    edges: &BTreeMap<(usize, usize), Vec<(usize, usize)>>,
    root: (usize, usize),
    sink_of: &dyn Fn(usize, usize) -> Option<&'s Sink>,
) -> Option<(Vec<(usize, usize)>, &'s Sink)> {
    let mut prev: BTreeMap<(usize, usize), (usize, usize)> = BTreeMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(root);
    let mut seen = std::collections::BTreeSet::new();
    seen.insert(root);
    while let Some(node) = queue.pop_front() {
        if let Some(sink) = sink_of(node.0, node.1) {
            let mut chain = vec![node];
            let mut cur = node;
            while cur != root {
                cur = prev[&cur];
                chain.push(cur);
            }
            chain.reverse();
            return Some((chain, sink));
        }
        for &next in edges.get(&node).into_iter().flatten() {
            if seen.insert(next) {
                prev.insert(next, node);
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use crate::model::FileModel;
    use std::path::Path;

    fn build(path: &str, src: &str) -> FileModel {
        FileModel::build(Path::new(path), &classify(src))
    }

    #[test]
    fn indirect_wall_clock_reach_is_flagged_with_the_chain() {
        let sim = build(
            "crates/testbed/src/runner.rs",
            "pub fn run_trace() { stamp_helper(); }\n",
        );
        let helper = build(
            "crates/bench/src/util.rs",
            "pub fn stamp_helper() { let t = Instant::now(); }\n",
        );
        let out = check(&[sim, helper], false);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "wall-clock-reach");
        assert!(
            out[0].message.contains("run_trace -> stamp_helper"),
            "{}",
            out[0].message
        );
        assert!(out[0].message.contains("Instant"));
    }

    #[test]
    fn reachability_stops_at_the_obs_boundary() {
        // obs owns Instant by design; a simulation fn calling into obs
        // (by resolved definition AND by obs:: path) is clean.
        let sim = build(
            "crates/testbed/src/runner.rs",
            "pub fn run_trace() { time_scope_helper(); obs::add(\"n\", 1); }\n",
        );
        let obs = build(
            "crates/obs/src/lib.rs",
            "pub fn time_scope_helper() { let t = Instant::now(); }\n\
             pub fn add(name: &str, n: u64) { let t = Instant::now(); }\n",
        );
        let out = check(&[sim, obs], false);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn direct_line_rule_sinks_are_not_double_reported() {
        // `Instant` directly inside a sim fn belongs to `nondeterminism`.
        let sim = build(
            "crates/netsim/src/engine.rs",
            "pub fn bad() { let t = Instant::now(); }\n",
        );
        let out = check(&[sim], false);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn direct_env_and_spawn_sinks_are_reported() {
        // thread::spawn and env::var are not in the line rule's ident
        // list, so even direct containment is this rule's finding.
        let sim = build(
            "crates/testbed/src/runner.rs",
            "pub fn fan_out() { std::thread::spawn(|| {}); }\n\
             pub fn workers() { let w = std::env::var(\"W\"); }\n",
        );
        let out = check(&[sim], false);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("thread::spawn"));
        assert!(out[1].message.contains("env::var"));
    }

    #[test]
    fn ambiguous_names_produce_no_edge() {
        let sim = build("crates/tcp/src/sender.rs", "pub fn send() { helper(); }\n");
        let a = build(
            "crates/bench/src/a.rs",
            "pub fn helper() { let t = Instant::now(); }\n",
        );
        let b = build("crates/bench/src/b.rs", "pub fn helper() {}\n");
        let out = check(&[sim, a, b], false);
        assert!(
            out.is_empty(),
            "two `helper` definitions — no edge, no guess"
        );
    }

    #[test]
    fn non_sim_crates_are_not_roots_unless_forced() {
        let bench = build(
            "crates/bench/src/profile.rs",
            "pub fn profile() { stamp(); }\npub fn stamp() { let t = Instant::now(); }\n",
        );
        assert!(check(std::slice::from_ref(&bench), false).is_empty());
        let forced = check(&[bench], true);
        assert_eq!(forced.len(), 1, "{forced:?}");
    }

    #[test]
    fn test_fns_are_outside_the_graph() {
        let sim = build(
            "crates/netsim/src/engine.rs",
            "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n    pub fn stamps() { wall(); }\n    \
             pub fn wall() { let t = Instant::now(); }\n}\n",
        );
        assert!(check(&[sim], false).is_empty());
    }
}
