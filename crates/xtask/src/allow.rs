//! The allowlist: `// lint:allow(rule, ...): justification` directives.
//!
//! A directive suppresses matching diagnostics on its own line and — so
//! it can sit on a line of its own above the offending code — on the
//! next line. Justifications are mandatory: an allowlist entry without a
//! reason is itself a violation, and so is a directive that suppresses
//! nothing (stale allowlists rot into lies about the code).

use crate::classify::ClassifiedLine;
use crate::diag::Diagnostic;
use std::path::Path;

/// One parsed directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// 1-based line the directive appears on.
    pub line: usize,
    /// Rules it names.
    pub rules: Vec<String>,
    /// The justification text after the closing `):`.
    pub justification: String,
}

/// Scans the comment channel of every line for directives.
pub fn collect(lines: &[ClassifiedLine]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for (idx, cl) in lines.iter().enumerate() {
        let comment = &cl.comment;
        let Some(start) = comment.find("lint:allow") else {
            continue;
        };
        // Doc comments describing the directive syntax (like this
        // module's own) are prose, not directives.
        if cl.doc[start..].starts_with("lint:allow") {
            continue;
        }
        let rest = &comment[start + "lint:allow".len()..];
        let Some(open) = rest.find('(') else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<String> = rest[open + 1..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let after = rest[close + 1..].trim_start();
        let justification = after.strip_prefix(':').unwrap_or("").trim().to_string();
        out.push(AllowDirective {
            line: idx + 1,
            rules,
            justification,
        });
    }
    out
}

/// Applies directives to `diags`: suppressed diagnostics are dropped.
/// Returns the surviving diagnostics plus new ones for malformed or
/// unused directives.
pub fn apply(
    file: &Path,
    directives: &[AllowDirective],
    diags: Vec<Diagnostic>,
    known_rules: &[&str],
) -> Vec<Diagnostic> {
    let mut used = vec![false; directives.len()];
    let mut out: Vec<Diagnostic> = Vec::new();

    'diag: for d in diags {
        for (i, dir) in directives.iter().enumerate() {
            let covers_line = d.line == dir.line || d.line == dir.line + 1;
            if covers_line && dir.rules.iter().any(|r| r == d.rule) {
                used[i] = true;
                continue 'diag;
            }
        }
        out.push(d);
    }

    for (i, dir) in directives.iter().enumerate() {
        if dir.justification.is_empty() {
            out.push(Diagnostic::error(
                file.to_path_buf(),
                dir.line,
                1,
                "lint-allow",
                "allowlist directive has no justification; write \
                 `// lint:allow(rule): why this is sound`"
                    .to_string(),
            ));
        }
        for r in &dir.rules {
            if !known_rules.contains(&r.as_str()) {
                out.push(Diagnostic::error(
                    file.to_path_buf(),
                    dir.line,
                    1,
                    "lint-allow",
                    format!("allowlist names unknown rule `{r}`"),
                ));
            }
        }
        if !used[i] && dir.justification.is_empty() {
            // Already reported above; don't double-report.
            continue;
        }
        if !used[i] {
            out.push(Diagnostic::error(
                file.to_path_buf(),
                dir.line,
                1,
                "lint-allow",
                format!(
                    "allowlist directive for ({}) suppresses nothing — remove it",
                    dir.rules.join(", ")
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;

    fn diag(line: usize, rule: &'static str) -> Diagnostic {
        Diagnostic::error("x.rs".into(), line, 1, rule, "m".into())
    }

    #[test]
    fn directive_parses_rules_and_justification() {
        let lines = classify("let x = 1; // lint:allow(float-eq, units): golden sentinel");
        let dirs = collect(&lines);
        assert_eq!(dirs.len(), 1);
        assert_eq!(dirs[0].rules, vec!["float-eq", "units"]);
        assert_eq!(dirs[0].justification, "golden sentinel");
    }

    #[test]
    fn suppresses_same_line_and_next_line() {
        let lines = classify("// lint:allow(float-eq): sentinel\nlet y = x == 0.0;");
        let dirs = collect(&lines);
        let out = apply(
            Path::new("x.rs"),
            &dirs,
            vec![diag(2, "float-eq")],
            &["float-eq"],
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn does_not_suppress_other_rules_or_far_lines() {
        let lines = classify("// lint:allow(float-eq): sentinel\nlet y = 1;\nlet z = x == 0.0;");
        let dirs = collect(&lines);
        let out = apply(
            Path::new("x.rs"),
            &dirs,
            vec![diag(3, "float-eq")],
            &["float-eq"],
        );
        // Directive covers lines 1-2 only: the diag survives and the
        // directive is reported unused.
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|d| d.rule == "float-eq" && d.line == 3));
        assert!(out.iter().any(|d| d.rule == "lint-allow"));
    }

    #[test]
    fn missing_justification_is_a_violation() {
        let lines = classify("let y = x == 0.0; // lint:allow(float-eq)");
        let dirs = collect(&lines);
        let out = apply(
            Path::new("x.rs"),
            &dirs,
            vec![diag(1, "float-eq")],
            &["float-eq"],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "lint-allow");
        assert!(out[0].message.contains("no justification"));
    }

    #[test]
    fn unknown_rule_names_are_reported() {
        let lines = classify("// lint:allow(no-such-rule): because");
        let dirs = collect(&lines);
        let out = apply(Path::new("x.rs"), &dirs, vec![], &["float-eq"]);
        assert!(out.iter().any(|d| d.message.contains("unknown rule")));
    }
}
