//! End-to-end tests of the `tputpred-xtask` binary: exit codes and
//! diagnostic formatting, driven through the real CLI.

use std::path::Path;
use std::process::Command;

fn xtask() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tputpred-xtask"))
}

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

#[test]
fn check_on_violating_fixture_exits_nonzero_with_located_diagnostics() {
    let out = xtask()
        .args(["check", &fixture("nondeterminism.rs")])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("[nondeterminism]"), "{stdout}");
    assert!(stdout.contains("Instant"), "{stdout}");
    // file:line:col prefix present.
    assert!(
        stdout.lines().all(|l| l.contains("nondeterminism.rs:")),
        "{stdout}"
    );
}

#[test]
fn check_on_clean_fixture_exits_zero() {
    let out = xtask()
        .args(["check", &fixture("clean.rs")])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(out.stdout.is_empty());
}

#[test]
fn check_whole_workspace_is_clean() {
    let out = xtask().arg("check").output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "violations:\n{stdout}");
}

#[test]
fn rule_filter_limits_findings_and_rejects_unknown_rules() {
    let out = xtask()
        .args(["check", "--rule", "float-eq", &fixture("float_eq.rs")])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.lines().all(|l| l.contains("[float-eq]")), "{stdout}");

    let out = xtask()
        .args(["check", "--rule", "no-such-rule"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn rules_lists_the_registry() {
    let out = xtask().arg("rules").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    for rule in [
        "nondeterminism",
        "units",
        "unit-flow",
        "no-unwrap",
        "wall-clock-reach",
        "hot-path-alloc",
        "float-eq",
        "rustdoc-citation",
        "lint-allow",
    ] {
        assert!(stdout.contains(rule), "missing {rule}: {stdout}");
    }
}

#[test]
fn justified_and_used_allows_pass_clean() {
    // The positive counterpart of `bad_allow.rs`: directives with a
    // justification that suppress a real violation produce no findings
    // — neither from the suppressed rule nor from the lint-allow
    // meta-rule.
    let out = xtask()
        .args(["check", &fixture("good_allow.rs")])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.is_empty(), "{stdout}");
}

#[test]
fn bad_allowlist_fixture_trips_the_meta_rule() {
    let out = xtask()
        .args(["check", &fixture("bad_allow.rs")])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("[lint-allow]"), "{stdout}");
    assert!(stdout.contains("no justification"), "{stdout}");
    assert!(stdout.contains("suppresses nothing"), "{stdout}");
}
