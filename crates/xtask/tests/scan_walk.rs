//! Discovery-policy test on a synthetic workspace tree: a violation
//! planted in a crate's `examples/` dir is caught, while identical
//! violations under nested `target/` and `vendor/` dirs are invisible.

use std::fs;
use std::path::Path;
use tputpred_xtask::{check_workspace, scan};

#[test]
fn planted_violation_in_examples_is_caught_and_skip_dirs_hide_theirs() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("scan_walk_ws");
    let _ = fs::remove_dir_all(&root);
    let bad = "fn main() { let x = 1.0; if x == 0.5 { println!(\"never\"); } }\n";

    // The example must be linted...
    let examples = root.join("crates/netsim/examples");
    fs::create_dir_all(&examples).unwrap();
    fs::write(examples.join("planted.rs"), bad).unwrap();
    // ...while the same bytes under skip dirs (nested, not root-level)
    // must stay invisible.
    for hidden in [
        "crates/netsim/target/debug/build",
        "crates/probes/vendor/fake",
        "deep/nested/vendor",
    ] {
        let dir = root.join(hidden);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("hidden.rs"), bad).unwrap();
    }

    let files = scan::rust_sources(&root);
    assert_eq!(
        files,
        vec![Path::new("crates/netsim/examples/planted.rs").to_path_buf()],
        "only the example survives discovery"
    );

    let diags = check_workspace(&root, None);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "float-eq");
    assert!(diags[0]
        .file
        .to_string_lossy()
        .contains("crates/netsim/examples/planted.rs"));
}
