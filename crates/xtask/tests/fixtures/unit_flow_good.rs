//! Fixture: dimension-correct twins of `unit_flow_bad.rs` — explicit
//! conversions and matching suffixes keep `unit-flow` quiet.

/// Same-dimension subtraction is fine.
pub fn elapsed(t1_s: f64, t0_s: f64) -> f64 {
    let dt_s = t1_s - t0_s;
    dt_s
}

/// Multiplicative dimension algebra is opaque by design.
pub fn window_bytes(rate_bps: f64, rtt_s: f64) -> f64 {
    rate_bps * rtt_s / 8.0
}

/// An explicit scale-and-cast conversion ends dataflow.
pub fn bind(d_s: f64) -> u64 {
    let wait_ns = (d_s * 1e9) as u64;
    wait_ns
}
