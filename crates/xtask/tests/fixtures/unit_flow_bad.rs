//! Fixture: every function here violates `unit-flow` on purpose.

/// Mixes nanoseconds and seconds across `-` (the old `units` rule lumps
/// both into one "time" class and misses this).
pub fn elapsed(t1_ns: u64, t0_s: u64) -> u64 {
    let dt = t1_ns - t0_s;
    dt
}

/// Returns a bits/s expression from a `_bytes`-suffixed fn.
pub fn window_bytes(rate_bps: f64) -> f64 {
    rate_bps
}

/// Declares seconds, initializes from nanoseconds.
pub fn bind(d_ns: f64) -> f64 {
    let wait_s = d_ns;
    wait_s
}
