//! Fixture: `wall-clock-reach` violations — a pub fn reaching a wall
//! clock through a private helper, and a direct environment read.

/// Looks pure, but the helper it calls stamps wall-clock time.
pub fn run_epoch() {
    stamp();
}

fn stamp() {
    let _t = std::time::Instant::now();
}

/// Environment reads make datasets depend on the invoking shell.
pub fn worker_count() -> usize {
    std::env::var("WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
