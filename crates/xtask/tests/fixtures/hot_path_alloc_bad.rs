//! Fixture: heap allocation inside a `lint:hot-path`-tagged function.

/// Per-event dispatch must not build strings or grow containers.
// lint:hot-path
pub fn dispatch(events: &mut Vec<u64>, seq: u64) {
    let label = format!("ev-{seq}");
    let _ = label;
    events.push(seq);
}
