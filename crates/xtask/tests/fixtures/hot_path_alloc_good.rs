//! Fixture: the allocation-free twin — hot paths mutate in place, and
//! untagged setup code may allocate freely.

/// Tagged, but constant-work: counters and in-place updates only.
// lint:hot-path
pub fn dispatch(counter: &mut u64) {
    *counter += 1;
}

/// Untagged setup code is outside the rule's reach.
pub fn cold_setup() -> Vec<u64> {
    Vec::with_capacity(64)
}
