//! Fixture: the sanctioned shape — timing goes through the `obs`
//! gateway (observation-only, DESIGN.md §11), computation stays pure.

/// Telemetry through obs's name-based API is not a sink.
pub fn run_epoch() {
    obs::add("epochs", 1);
    compute();
}

fn compute() -> u64 {
    2 + 2
}
