//! End-to-end tests of the semantic rules (`unit-flow`,
//! `wall-clock-reach`, `hot-path-alloc`) through the real CLI, driven
//! by good/bad fixture pairs under `tests/fixtures/`, plus the pinned
//! `--format json` schema.

use std::path::Path;
use std::process::Command;

fn xtask() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tputpred-xtask"))
}

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

/// Runs `check` on one fixture and returns (exit code, stdout).
fn check(name: &str) -> (i32, String) {
    let out = xtask().args(["check", &fixture(name)]).output().unwrap();
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8(out.stdout).unwrap(),
    )
}

#[test]
fn unit_flow_bad_fixture_trips_and_good_stays_clean() {
    let (code, stdout) = check("unit_flow_bad.rs");
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("[unit-flow]"), "{stdout}");
    // All three shapes fire: additive mix, return suffix, let binding.
    assert!(stdout.contains("t1_ns"), "{stdout}");
    assert!(stdout.contains("window_bytes"), "{stdout}");
    assert!(stdout.contains("let wait_s"), "{stdout}");

    let (code, stdout) = check("unit_flow_good.rs");
    assert_eq!(code, 0, "{stdout}");
}

#[test]
fn wall_clock_reach_bad_fixture_trips_and_good_stays_clean() {
    let (code, stdout) = check("wall_clock_reach_bad.rs");
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("[wall-clock-reach]"), "{stdout}");
    // The indirect chain is spelled out, and the direct env read (which
    // no line rule covers) is reported too.
    assert!(stdout.contains("run_epoch -> stamp"), "{stdout}");
    assert!(stdout.contains("env::var"), "{stdout}");

    let (code, stdout) = check("wall_clock_reach_good.rs");
    assert_eq!(code, 0, "{stdout}");
}

#[test]
fn hot_path_alloc_bad_fixture_trips_and_good_stays_clean() {
    let (code, stdout) = check("hot_path_alloc_bad.rs");
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("[hot-path-alloc]"), "{stdout}");
    assert!(stdout.contains("`format!`"), "{stdout}");
    assert!(stdout.contains("`.push(..)`"), "{stdout}");

    let (code, stdout) = check("hot_path_alloc_good.rs");
    assert_eq!(code, 0, "{stdout}");
}

#[test]
fn rule_filter_selects_a_semantic_rule() {
    let out = xtask()
        .args([
            "check",
            "--rule",
            "hot-path-alloc",
            &fixture("hot_path_alloc_bad.rs"),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.lines().all(|l| l.contains("[hot-path-alloc]")),
        "{stdout}"
    );
}

#[test]
fn json_format_schema_is_pinned() {
    // The `--format json` document is a stable contract CI archives and
    // gates on: version header, then one object per diagnostic with
    // exactly these keys.
    let out = xtask()
        .args([
            "check",
            "--format",
            "json",
            &fixture("hot_path_alloc_bad.rs"),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let doc = stdout.trim();
    assert!(
        doc.starts_with("{\"version\":1,\"diagnostics\":[{"),
        "{doc}"
    );
    assert!(doc.ends_with("}]}"), "{doc}");
    for key in [
        "\"rule\":\"hot-path-alloc\"",
        "\"severity\":\"error\"",
        "\"file\":\"",
        "\"line\":",
        "\"col\":",
        "\"message\":\"",
        "\"hint\":\"",
    ] {
        assert!(doc.contains(key), "missing {key}: {doc}");
    }

    // A clean input yields the empty document, exit 0.
    let out = xtask()
        .args(["check", "--format", "json", &fixture("unit_flow_good.rs")])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.trim(), "{\"version\":1,\"diagnostics\":[]}");

    // Bad --format values are usage errors.
    let out = xtask()
        .args(["check", "--format", "yaml"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn lint_allow_suppresses_semantic_rules_too() {
    // A justified directive on the offending line silences the semantic
    // rule exactly like a line rule — written to a temp file because the
    // fixtures stay canonical.
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("allow_semantic");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("tagged.rs");
    std::fs::write(
        &file,
        "// lint:hot-path\npub fn dispatch(q: &mut Vec<u64>) {\n    \
         // lint:allow(hot-path-alloc): retained-capacity buffer\n    q.push(1);\n}\n",
    )
    .unwrap();
    let out = xtask()
        .args(["check", &file.to_string_lossy()])
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "{stdout}");
}
