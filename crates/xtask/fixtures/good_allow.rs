// Fixture: sound, justified suppressions — the shape real crates use.
// Not compiled.
fn good(x: f64) -> bool {
    // lint:allow(float-eq): 0.0 is an exact sentinel written by this module, never computed
    x == 0.0
}

fn also_good() -> u64 {
    let v = vec![1u64];
    // lint:allow(no-unwrap): builder invariant — the vec is seeded one line above
    *v.first().unwrap()
}
