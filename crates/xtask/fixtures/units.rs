// Fixture: unit-suffix violations. Not compiled.
fn bad() {
    let rtt_ms = 50.0;
    let cap_mbps = 10.0;
    let buf_kb = 64;
    let rtt_s = 0.05;
    let cap_bps = 1e7;
    let _mixed = cap_bps + rtt_s;
}
