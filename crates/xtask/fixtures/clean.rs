// Fixture: clean code no rule should fire on. Not compiled.

/// Escaped citation \[26\], inline `[3]` code, and a [link](https://x).
///
/// ```
/// let sample = arr[26];
/// ```
fn good(cap_bps: f64, rtt_s: f64) -> f64 {
    let bdp_bytes = cap_bps * rtt_s / 8.0;
    let close_enough = (bdp_bytes - 1.0).abs() < 1e-9;
    // lint:allow(float-eq): golden sentinel value is produced by exact assignment
    let exact = bdp_bytes == 0.0;
    if close_enough || exact {
        0.0
    } else {
        bdp_bytes
    }
}
