// Fixture: every nondeterminism violation class. Not compiled.
use std::collections::HashMap;
use std::time::{Instant, SystemTime};

fn bad() {
    let _t = Instant::now();
    let _w = SystemTime::now();
    let mut rng = thread_rng();
    let _r = StdRng::from_entropy();
    let mut m: HashMap<u32, u32> = HashMap::new();
}
