// Fixture: allowlist misuse. Not compiled.
fn bad(x: f64) -> bool {
    // lint:allow(float-eq)
    x == 0.0
}

fn unused() {
    // lint:allow(nondeterminism): nothing here actually needs this
    let _y = 1;
}
