// Fixture: panicking extraction in simulation code. Not compiled.
fn bad(maybe_bps: Option<f64>) -> f64 {
    let a = maybe_bps.unwrap();
    let b = maybe_bps.expect("measured earlier");
    a + b
}

fn good(maybe_bps: Option<f64>) -> f64 {
    maybe_bps.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    // Test code may panic on broken expectations.
    fn asserts() {
        Some(1.0f64).unwrap();
    }
}
