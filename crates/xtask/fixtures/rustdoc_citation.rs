// Fixture: unescaped citation brackets in doc comments. Not compiled.

/// The PFTK model [26] predicts steady-state throughput.
fn bad() {}

/// Properly escaped \[26\] and a [link](https://example.com) are fine.
fn good() {}
