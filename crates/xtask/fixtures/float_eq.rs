// Fixture: exact float comparisons. Not compiled.
fn bad(x: f64) -> bool {
    if x == 0.0 {
        return true;
    }
    x != 1.5e3 && x == 3f64
}
