//! # tputpred-probes — measurement tools on the simulator
//!
//! The paper's measurement epoch (Fig. 1) uses three tools, each rebuilt
//! here as simulator endpoints:
//!
//! * [`ping::PingProber`] — the "homespun ping utility": a 41-byte probe
//!   every 100 ms, echoed by a [`tputpred_netsim::sources::Reflector`].
//!   Produces the a-priori RTT/loss estimates `T̂`, `p̂` and the
//!   during-flow estimates `T̃`, `p̃` via windowed summaries.
//! * [`pathload::Pathload`] — a pathload-style available-bandwidth
//!   estimator: SLoPS rate bracketing. Streams of small packets are sent
//!   at a trial rate; the receiver checks the one-way-delay trend
//!   (PCT/PDT metrics); an increasing trend means the trial rate exceeds
//!   the avail-bw, and a grow-then-bisect search converges to `Â`.
//! * [`iperf::BulkTransfer`] — the IPerf-style target flow: a bulk TCP
//!   Reno transfer of fixed duration with a configurable socket buffer
//!   `W`, measured by delivered bytes.
//! * [`pathchirp::PathChirp`] — the alternative avail-bw estimator the
//!   paper cites (ref. \[21\]): exponentially spaced chirp trains with
//!   excursion-point analysis; `abl_availbw` compares it against
//!   pathload as an FB input.

pub mod iperf;
pub mod pathchirp;
pub mod pathload;
pub mod ping;

pub use iperf::BulkTransfer;
pub use pathchirp::{PathChirp, PathChirpConfig, PathChirpHandle};
pub use pathload::{Pathload, PathloadConfig, PathloadHandle};
pub use ping::{PingProber, PingStats, PingStatsHandle, PingSummary, ProbeMask};
