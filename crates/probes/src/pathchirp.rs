//! pathChirp-style available-bandwidth estimation (the paper's ref.
//! \[21\]: Ribeiro et al., PAM 2003).
//!
//! Where pathload sends constant-rate streams and bisects, pathChirp
//! sends **chirps**: short trains whose inter-packet gaps shrink
//! exponentially, so a single train sweeps a whole range of
//! instantaneous rates. The receiver looks for the *excursion point* —
//! the packet index from which one-way delays rise persistently — and
//! reads the avail-bw off the instantaneous rate at that point. Several
//! chirps are averaged (median here) for one estimate.
//!
//! Simplifications relative to the real tool (recorded in DESIGN.md):
//! the full excursion-segmentation of the original is reduced to the
//! last persistent-increase suffix of the delay profile, and the
//! estimate aggregation is a median rather than the per-packet weighted
//! average. The probing traffic itself — exponentially spaced small UDP
//! packets through the real queue — is simulated faithfully.

use std::cell::RefCell;
use std::rc::Rc;
use tputpred_netsim::{
    Ctx, Endpoint, EndpointId, Packet, Payload, ProbeMeta, Route, Simulator, Time,
};

/// pathChirp parameters.
#[derive(Debug, Clone, Copy)]
pub struct PathChirpConfig {
    /// Probe packet wire size.
    pub packet_size: u32,
    /// Packets per chirp.
    pub packets_per_chirp: u32,
    /// Instantaneous rate of the first inter-packet gap, bits/s.
    pub min_rate: f64,
    /// Instantaneous rate of the last inter-packet gap, bits/s.
    pub max_rate: f64,
    /// Chirps per measurement; the estimate is their median.
    pub chirps: u32,
    /// Idle gap between chirps (queue drain + straggler arrival).
    pub inter_chirp_gap: Time,
    /// Fraction of a chirp's tail that must show rising delays for an
    /// excursion to count (persistence filter).
    pub persistence: f64,
}

impl Default for PathChirpConfig {
    fn default() -> Self {
        PathChirpConfig {
            // Full-size probes: the chirp's own queue buildup at
            // above-avail rates must stand out against cross-traffic
            // noise, and buildup per packet scales with packet size.
            packet_size: 1000,
            packets_per_chirp: 32,
            min_rate: 100e3,
            max_rate: 200e6,
            chirps: 9,
            inter_chirp_gap: Time::from_millis(250),
            persistence: 0.55,
        }
    }
}

/// Outcome of a pathChirp measurement.
#[derive(Debug, Clone, Default)]
pub struct PathChirpResult {
    /// Median of the per-chirp estimates, once all chirps are evaluated.
    pub estimate: Option<f64>,
    /// Per-chirp estimates, in chirp order.
    pub per_chirp: Vec<f64>,
    /// True once all chirps are in.
    pub done: bool,
}

/// Shared handle to a measurement's result.
pub type PathChirpHandle = Rc<RefCell<PathChirpResult>>;

type OwdLog = Rc<RefCell<Vec<Vec<(u64, Time)>>>>;

/// Instantaneous rate preceding packet `k` (gap between packets k−1, k).
fn rate_at(config: &PathChirpConfig, k: u32) -> f64 {
    // Geometric sweep from min_rate (first gap) to max_rate (last gap).
    let n = config.packets_per_chirp.max(2);
    let ratio = (config.max_rate / config.min_rate).powf(1.0 / (n - 2).max(1) as f64);
    config.min_rate * ratio.powi(k.saturating_sub(1) as i32)
}

/// Per-chirp estimate from its OWD profile: the instantaneous rate at the
/// start of the final persistent delay excursion.
fn chirp_estimate(config: &PathChirpConfig, samples: &[(u64, Time)], sent: u32) -> f64 {
    // Missing packets at the tail mean the chirp's top rates overflowed
    // the queue: treat the first missing index as the excursion point.
    let mut owds = vec![None; sent as usize];
    for &(seq, owd) in samples {
        if (seq as usize) < owds.len() {
            owds[seq as usize] = Some(owd.as_secs_f64());
        }
    }
    let first_missing = owds.iter().position(|o| o.is_none());
    let usable: Vec<f64> = owds.iter().map_while(|o| *o).collect();
    if usable.len() < 4 {
        return config.min_rate;
    }
    let n = usable.len();
    // Light 3-point median smoothing so a single noisy sample cannot
    // masquerade as (or hide) the final climb.
    let smooth: Vec<f64> = (0..n)
        .map(|i| {
            let lo = i.saturating_sub(1);
            let hi = (i + 2).min(n);
            let mut w: Vec<f64> = usable[lo..hi].to_vec();
            w.sort_by(f64::total_cmp);
            w[w.len() / 2]
        })
        .collect();
    // The excursion point is the *last valley before the final climb*:
    // the largest index whose (smoothed) delay is a minimum of its own
    // suffix. From there the delays must rise persistently — at least
    // `persistence` of the steps increasing with a positive net drift —
    // or the chirp never loaded the path.
    let mut excursion = None;
    let mut suffix_min = f64::INFINITY;
    let mut valley = None;
    for i in (0..n - 1).rev() {
        if smooth[i] <= suffix_min {
            suffix_min = smooth[i];
            valley = Some(i);
        }
    }
    if let Some(v) = valley {
        // Largest index still equal to the running suffix minimum.
        let last_valley = (v..n - 1)
            .rev()
            .find(|&i| smooth[i] <= suffix_min + 1e-12)
            .unwrap_or(v);
        let suffix = &smooth[last_valley..];
        if suffix.len() >= 3 {
            let steps = suffix.len() - 1;
            let ups = suffix.windows(2).filter(|w| w[1] > w[0]).count();
            let net = suffix[suffix.len() - 1] - suffix[0];
            if ups as f64 >= config.persistence * steps as f64 && net > 0.0 {
                excursion = Some((last_valley + 1) as u32);
            }
        }
    }
    match (excursion, first_missing) {
        (Some(k), _) => rate_at(config, k),
        // No rising suffix but losses: the loss point is the excursion.
        (None, Some(m)) if m >= 2 => rate_at(config, m as u32),
        (None, Some(_)) => config.min_rate,
        // The chirp never loaded the path: avail-bw is at least max_rate.
        (None, None) => config.max_rate,
    }
}

const TOKEN_SEND: u64 = 1;
const TOKEN_EVAL: u64 = 2;

/// The sending side of a pathChirp measurement.
pub struct PathChirp {
    config: PathChirpConfig,
    route: Route,
    dst: EndpointId,
    owds: OwdLog,
    result: PathChirpHandle,
    chirp_idx: u32,
    pkt_idx: u32,
}

/// The receiving side: logs per-chirp one-way delays.
struct ChirpSink {
    owds: OwdLog,
}

impl Endpoint for ChirpSink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        if let Payload::Probe(meta) = packet.payload {
            let mut log = self.owds.borrow_mut();
            let chirp = meta.stream as usize;
            if log.len() <= chirp {
                log.resize_with(chirp + 1, Vec::new);
            }
            log[chirp].push((meta.seq, ctx.now.saturating_sub(meta.sent_at)));
        }
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
}

impl PathChirp {
    /// Installs a measurement into `sim`, bootstrapped at `start`;
    /// returns the shared result handle. Wall time is roughly
    /// `chirps × (chirp duration + inter_chirp_gap)` — a second or two
    /// with defaults.
    pub fn deploy(
        sim: &mut Simulator,
        config: PathChirpConfig,
        route: Route,
        start: Time,
    ) -> PathChirpHandle {
        let owds: OwdLog = Rc::new(RefCell::new(Vec::new()));
        let sink = ChirpSink {
            owds: Rc::clone(&owds),
        };
        let sink_id = sim.add_endpoint(Box::new(sink));
        let result = PathChirpHandle::default();
        let prober = PathChirp {
            config,
            route,
            dst: sink_id,
            owds,
            result: Rc::clone(&result),
            chirp_idx: 0,
            pkt_idx: 0,
        };
        let id = sim.add_endpoint(Box::new(prober));
        sim.schedule_timer(id, TOKEN_SEND, start);
        result
    }
}

impl Endpoint for PathChirp {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.result.borrow().done {
            return;
        }
        match token {
            TOKEN_SEND if self.pkt_idx < self.config.packets_per_chirp => {
                let meta = ProbeMeta {
                    seq: self.pkt_idx as u64,
                    stream: self.chirp_idx,
                    sent_at: ctx.now,
                    is_reply: false,
                };
                ctx.send(
                    self.route,
                    self.dst,
                    self.config.packet_size,
                    Payload::Probe(meta),
                );
                self.pkt_idx += 1;
                if self.pkt_idx < self.config.packets_per_chirp {
                    let rate = rate_at(&self.config, self.pkt_idx);
                    ctx.set_timer_after(TOKEN_SEND, Time::tx_time(self.config.packet_size, rate));
                } else {
                    ctx.set_timer_after(TOKEN_EVAL, self.config.inter_chirp_gap);
                }
            }
            TOKEN_EVAL => {
                let samples = {
                    let log = self.owds.borrow();
                    log.get(self.chirp_idx as usize)
                        .cloned()
                        .unwrap_or_default()
                };
                let estimate =
                    chirp_estimate(&self.config, &samples, self.config.packets_per_chirp);
                {
                    let mut r = self.result.borrow_mut();
                    r.per_chirp.push(estimate);
                    if r.per_chirp.len() as u32 >= self.config.chirps {
                        r.estimate = tputpred_stats::median(&r.per_chirp);
                        r.done = true;
                        return;
                    }
                }
                self.chirp_idx += 1;
                self.pkt_idx = 0;
                ctx.set_timer_after(TOKEN_SEND, Time::ZERO);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tputpred_netsim::link::LinkConfig;
    use tputpred_netsim::sources::{PoissonSource, Sink, SourceConfig};
    use tputpred_netsim::RateSchedule;

    fn measure(capacity: f64, cross: f64, seed: u64) -> f64 {
        let mut sim = Simulator::new(seed);
        let fwd = sim.add_link(LinkConfig::new(capacity, Time::from_millis(20), 170));
        if cross > 0.0 {
            let (sink, _) = Sink::new();
            let sink_id = sim.add_endpoint(Box::new(sink));
            let (src, _) = PoissonSource::new(SourceConfig {
                route: Route::direct(fwd),
                dst: sink_id,
                packet_size: 1000,
                base_rate_bps: cross,
                schedule: RateSchedule::constant(1.0),
                stop: Time::MAX,
            });
            let id = sim.add_endpoint(Box::new(src));
            sim.schedule_timer(id, 0, Time::ZERO);
        }
        let config = PathChirpConfig {
            max_rate: capacity * 1.5,
            ..PathChirpConfig::default()
        };
        let handle = PathChirp::deploy(&mut sim, config, Route::direct(fwd), Time::from_secs(2));
        sim.run_until(Time::from_secs(30));
        let r = handle.borrow();
        assert!(r.done, "chirp train must complete");
        r.estimate.unwrap()
    }

    #[test]
    fn idle_path_estimates_near_capacity() {
        let est = measure(10e6, 0.0, 51);
        assert!(
            (6e6..15.5e6).contains(&est),
            "idle 10 Mbps: {:.2} Mbps",
            est / 1e6
        );
    }

    #[test]
    fn half_loaded_path_estimates_the_residual() {
        let est = measure(10e6, 5e6, 52);
        assert!(
            (2e6..9e6).contains(&est),
            "≈5 Mbps residual: {:.2} Mbps",
            est / 1e6
        );
    }

    #[test]
    fn loaded_path_estimates_well_below_idle() {
        let idle = measure(10e6, 0.0, 53);
        let loaded = measure(10e6, 8e6, 53);
        assert!(
            loaded < idle / 1.8,
            "80% load must show: idle {:.2} vs loaded {:.2} Mbps",
            idle / 1e6,
            loaded / 1e6
        );
    }

    #[test]
    fn rate_sweep_is_geometric_and_bounded() {
        let cfg = PathChirpConfig::default();
        let first = rate_at(&cfg, 1);
        let last = rate_at(&cfg, cfg.packets_per_chirp - 1);
        assert!((first / cfg.min_rate - 1.0).abs() < 1e-9);
        assert!((last / cfg.max_rate - 1.0).abs() < 0.01, "last {last}");
        for k in 1..cfg.packets_per_chirp {
            assert!(rate_at(&cfg, k) >= rate_at(&cfg, k.saturating_sub(1)) * 0.999);
        }
    }

    #[test]
    fn excursion_detection_reads_a_synthetic_profile() {
        let cfg = PathChirpConfig {
            packets_per_chirp: 20,
            min_rate: 1e6,
            max_rate: 64e6,
            ..PathChirpConfig::default()
        };
        // Flat delays up to packet 10, rising after: excursion at ~10.
        let samples: Vec<(u64, Time)> = (0..20)
            .map(|i| {
                let owd = if i < 10 { 1000 } else { 1000 + 300 * (i - 9) };
                (i, Time::from_micros(owd))
            })
            .collect();
        let est = chirp_estimate(&cfg, &samples, 20);
        let expected = rate_at(&cfg, 10);
        assert!(
            (est / expected - 1.0).abs() < 0.8,
            "estimate {est:.0} vs rate at excursion {expected:.0}"
        );
    }

    #[test]
    fn clean_profile_reports_max_rate() {
        let cfg = PathChirpConfig::default();
        let samples: Vec<(u64, Time)> = (0..cfg.packets_per_chirp as u64)
            .map(|i| (i, Time::from_micros(1000)))
            .collect();
        assert_eq!(
            chirp_estimate(&cfg, &samples, cfg.packets_per_chirp),
            cfg.max_rate
        );
    }

    #[test]
    fn tail_loss_marks_the_excursion() {
        let cfg = PathChirpConfig::default();
        // Only the first 12 of 24 packets arrive (flat delays): the top
        // rates overflowed.
        let samples: Vec<(u64, Time)> = (0..12).map(|i| (i, Time::from_micros(1000))).collect();
        let est = chirp_estimate(&cfg, &samples, cfg.packets_per_chirp);
        assert!((est / rate_at(&cfg, 12) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn measurement_is_deterministic() {
        assert_eq!(measure(10e6, 4e6, 54), measure(10e6, 4e6, 54));
    }
}
