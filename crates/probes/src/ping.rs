//! Periodic RTT/loss probing — the paper's "homespun ping utility that
//! generates a 41-byte probing packet every 100 ms" (§4.1).

use std::cell::RefCell;
use std::rc::Rc;
use tputpred_netsim::{Ctx, Endpoint, EndpointId, Packet, Payload, ProbeMeta, Route, Time};

/// One probe's fate.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ProbeRecord {
    sent_at: Time,
    /// RTT if the echo came back.
    rtt: Option<Time>,
}

/// Accumulated probe records, shared with the experiment driver.
#[derive(Debug, Default)]
pub struct PingStats {
    records: Vec<ProbeRecord>,
}

/// RTT/loss summary over a probing window: the `(T̂, p̂)` or `(T̃, p̃)`
/// pair of one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PingSummary {
    /// Probes sent in the window.
    pub sent: usize,
    /// Probes answered.
    pub received: usize,
    /// Mean RTT of answered probes, seconds (0.0 if none answered).
    pub rtt: f64,
    /// Loss rate: unanswered / sent (0.0 for an empty window).
    pub loss_rate: f64,
}

/// Fault windows applied when summarizing probe records — the
/// measurement-layer view of a prober outage or a reply-loss burst
/// (`tputpred-testbed::faults`). The probes themselves still traverse
/// the simulated path (41 bytes per 100 ms is negligible load); the
/// mask rewrites what the *measurement* sees.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProbeMask {
    /// Prober down: probes sent within `[start, end)` are treated as
    /// never sent — excluded from the summary entirely.
    pub outage: Option<(Time, Time)>,
    /// Return-path loss burst: probes sent within `[start, end)` count
    /// as lost even when their echo arrived.
    pub forced_loss: Option<(Time, Time)>,
}

impl ProbeMask {
    /// A mask that changes nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no window is set.
    pub fn is_none(&self) -> bool {
        self.outage.is_none() && self.forced_loss.is_none()
    }
}

fn within(t: Time, window: Option<(Time, Time)>) -> bool {
    window.is_some_and(|(start, end)| t >= start && t < end)
}

impl PingStats {
    /// Summarizes probes *sent* within `[from, to)`.
    ///
    /// A probe with no echo counts as lost, so call this only once the
    /// window is comfortably past (replies in flight at query time would
    /// otherwise inflate the loss rate — epochs in the testbed leave
    /// multi-second guards, and RTTs are well under a second).
    pub fn summarize(&self, from: Time, to: Time) -> PingSummary {
        self.summarize_masked(from, to, &ProbeMask::none())
    }

    /// [`PingStats::summarize`] with fault windows applied: probes in
    /// the mask's outage window are dropped from the summary, probes in
    /// its forced-loss window count as lost. With [`ProbeMask::none`]
    /// this is exactly `summarize`.
    pub fn summarize_masked(&self, from: Time, to: Time, mask: &ProbeMask) -> PingSummary {
        let window = self
            .records
            .iter()
            .filter(|r| r.sent_at >= from && r.sent_at < to)
            .filter(|r| !within(r.sent_at, mask.outage));
        let mut sent = 0;
        let mut received = 0;
        let mut rtt_sum = 0.0;
        for r in window {
            sent += 1;
            if within(r.sent_at, mask.forced_loss) {
                continue;
            }
            if let Some(rtt) = r.rtt {
                received += 1;
                rtt_sum += rtt.as_secs_f64();
            }
        }
        PingSummary {
            sent,
            received,
            rtt: if received > 0 {
                rtt_sum / received as f64
            } else {
                0.0
            },
            loss_rate: if sent > 0 {
                (sent - received) as f64 / sent as f64
            } else {
                0.0
            },
        }
    }

    /// Total probes recorded.
    pub fn total_sent(&self) -> usize {
        self.records.len()
    }

    /// Probes whose echo never came back (replies lost, in-flight
    /// replies included until they land). Telemetry reads this once a
    /// trace is over; it is not a per-window loss estimate — use
    /// [`PingStats::summarize`] for that.
    pub fn replies_lost(&self) -> usize {
        self.records.iter().filter(|r| r.rtt.is_none()).count()
    }
}

/// Shared handle to a prober's records.
pub type PingStatsHandle = Rc<RefCell<PingStats>>;

/// The probing endpoint. Sends a probe every `interval` from its
/// bootstrap timer until `stop`; pairs echoes by sequence number.
///
/// Wire size is 41 bytes, as in the paper.
pub struct PingProber {
    route: Route,
    dst: EndpointId,
    interval: Time,
    stop: Time,
    probe_size: u32,
    next_seq: u64,
    stats: PingStatsHandle,
}

impl PingProber {
    /// The paper's probe size.
    pub const PROBE_SIZE: u32 = 41;

    /// Creates a prober toward the [`tputpred_netsim::sources::Reflector`]
    /// at `dst`, probing every `interval` until `stop`. Returns the
    /// prober and the shared record handle.
    pub fn new(
        route: Route,
        dst: EndpointId,
        interval: Time,
        stop: Time,
    ) -> (Self, PingStatsHandle) {
        let stats = PingStatsHandle::default();
        (
            PingProber {
                route,
                dst,
                interval,
                stop,
                probe_size: Self::PROBE_SIZE,
                next_seq: 0,
                stats: Rc::clone(&stats),
            },
            stats,
        )
    }
}

impl Endpoint for PingProber {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        if let Payload::Probe(meta) = packet.payload {
            if meta.is_reply {
                let mut stats = self.stats.borrow_mut();
                if let Some(rec) = stats.records.get_mut(meta.seq as usize) {
                    debug_assert_eq!(rec.sent_at, meta.sent_at, "echo timestamp mismatch");
                    rec.rtt = Some(ctx.now.saturating_sub(meta.sent_at));
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if ctx.now >= self.stop {
            return;
        }
        let meta = ProbeMeta {
            seq: self.next_seq,
            stream: 0,
            sent_at: ctx.now,
            is_reply: false,
        };
        self.next_seq += 1;
        self.stats.borrow_mut().records.push(ProbeRecord {
            sent_at: ctx.now,
            rtt: None,
        });
        ctx.send(self.route, self.dst, self.probe_size, Payload::Probe(meta));
        ctx.set_timer_after(0, self.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tputpred_netsim::link::LinkConfig;
    use tputpred_netsim::sources::{PoissonSource, Reflector, Sink, SourceConfig};
    use tputpred_netsim::{RateSchedule, Simulator};

    /// One path: forward link (configurable), fast reverse link.
    fn world(fwd_rate: f64, fwd_buffer_pkts: u32) -> (Simulator, PingStatsHandle) {
        let mut sim = Simulator::new(21);
        let fwd = sim.add_link(LinkConfig::new(
            fwd_rate,
            Time::from_millis(25),
            fwd_buffer_pkts,
        ));
        let rev = sim.add_link(LinkConfig::new(1e9, Time::from_millis(25), 1000));
        let (reflector, _) = Reflector::new(Route::direct(rev));
        let refl_id = sim.add_endpoint(Box::new(reflector));
        let (prober, stats) = PingProber::new(
            Route::direct(fwd),
            refl_id,
            Time::from_millis(100),
            Time::from_secs(60),
        );
        let prober_id = sim.add_endpoint(Box::new(prober));
        sim.schedule_timer(prober_id, 0, Time::ZERO);
        (sim, stats)
    }

    #[test]
    fn idle_path_measures_base_rtt_and_zero_loss() {
        let (mut sim, stats) = world(10e6, 67);
        sim.run_until(Time::from_secs(62));
        let s = stats.borrow().summarize(Time::ZERO, Time::from_secs(60));
        assert_eq!(s.sent, 600, "one probe per 100 ms for 60 s");
        assert_eq!(s.received, 600);
        assert_eq!(s.loss_rate, 0.0);
        // 50 ms propagation + negligible serialization.
        assert!((s.rtt - 0.050).abs() < 0.001, "rtt {:.4}", s.rtt);
    }

    #[test]
    fn saturated_path_shows_loss_and_queueing() {
        let (mut sim, stats) = {
            let mut sim = Simulator::new(22);
            let fwd = sim.add_link(LinkConfig::new(2e6, Time::from_millis(25), 13));
            let rev = sim.add_link(LinkConfig::new(1e9, Time::from_millis(25), 1000));
            let (reflector, _) = Reflector::new(Route::direct(rev));
            let refl_id = sim.add_endpoint(Box::new(reflector));
            // 120% offered Poisson load on the forward link (random
            // arrivals, so the probe samples the full queue at random
            // phases — deterministic CBR would phase-lock with the
            // 100 ms probe period).
            let (sink, _) = Sink::new();
            let sink_id = sim.add_endpoint(Box::new(sink));
            let (cbr, _) = PoissonSource::new(SourceConfig {
                route: Route::direct(fwd),
                dst: sink_id,
                packet_size: 1500,
                base_rate_bps: 2.4e6,
                schedule: RateSchedule::constant(1.0),
                stop: Time::MAX,
            });
            let cbr_id = sim.add_endpoint(Box::new(cbr));
            sim.schedule_timer(cbr_id, 0, Time::ZERO);
            let (prober, stats) = PingProber::new(
                Route::direct(fwd),
                refl_id,
                Time::from_millis(100),
                Time::from_secs(60),
            );
            let prober_id = sim.add_endpoint(Box::new(prober));
            sim.schedule_timer(prober_id, 0, Time::ZERO);
            (sim, stats)
        };
        sim.run_until(Time::from_secs(65));
        let s = stats.borrow().summarize(Time::ZERO, Time::from_secs(60));
        assert!(
            s.loss_rate > 0.05,
            "overload must drop probes: {}",
            s.loss_rate
        );
        // A full 13-packet (~19.5 kB) queue at 2 Mbps adds ~78 ms.
        assert!(s.rtt > 0.100, "queueing delay visible: {:.4}", s.rtt);
    }

    #[test]
    fn windows_are_independent() {
        let (mut sim, stats) = world(10e6, 67);
        sim.run_until(Time::from_secs(62));
        let first = stats.borrow().summarize(Time::ZERO, Time::from_secs(30));
        let second = stats
            .borrow()
            .summarize(Time::from_secs(30), Time::from_secs(60));
        assert_eq!(first.sent, 300);
        assert_eq!(second.sent, 300);
    }

    #[test]
    fn prober_stops_at_deadline() {
        let (mut sim, stats) = world(10e6, 67);
        sim.run_until(Time::from_secs(120));
        assert_eq!(stats.borrow().total_sent(), 600);
    }

    #[test]
    fn masked_outage_drops_probes_from_the_summary() {
        let (mut sim, stats) = world(10e6, 67);
        sim.run_until(Time::from_secs(62));
        let mask = ProbeMask {
            outage: Some((Time::from_secs(10), Time::from_secs(20))),
            forced_loss: None,
        };
        let s = stats
            .borrow()
            .summarize_masked(Time::ZERO, Time::from_secs(60), &mask);
        assert_eq!(s.sent, 500, "100 probes fall in the outage");
        assert_eq!(s.received, 500);
        assert_eq!(s.loss_rate, 0.0, "unsent probes are not losses");
    }

    #[test]
    fn masked_forced_loss_counts_probes_as_lost() {
        let (mut sim, stats) = world(10e6, 67);
        sim.run_until(Time::from_secs(62));
        let mask = ProbeMask {
            outage: None,
            forced_loss: Some((Time::from_secs(0), Time::from_secs(6))),
        };
        let s = stats
            .borrow()
            .summarize_masked(Time::ZERO, Time::from_secs(60), &mask);
        assert_eq!(s.sent, 600);
        assert_eq!(s.received, 540, "60 echoes are discarded");
        assert!((s.loss_rate - 0.1).abs() < 1e-9);
    }

    #[test]
    fn empty_mask_matches_summarize() {
        let (mut sim, stats) = world(10e6, 67);
        sim.run_until(Time::from_secs(62));
        let stats = stats.borrow();
        let plain = stats.summarize(Time::ZERO, Time::from_secs(60));
        let masked = stats.summarize_masked(Time::ZERO, Time::from_secs(60), &ProbeMask::none());
        assert_eq!(plain, masked);
        assert!(ProbeMask::none().is_none());
    }

    #[test]
    fn empty_window_summarizes_benignly() {
        let stats = PingStats::default();
        let s = stats.summarize(Time::ZERO, Time::from_secs(1));
        assert_eq!(s.sent, 0);
        assert_eq!(s.loss_rate, 0.0);
        assert_eq!(s.rtt, 0.0);
    }
}
