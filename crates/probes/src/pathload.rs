//! Pathload-style available-bandwidth estimation (SLoPS).
//!
//! Self-Loading Periodic Streams (Jain & Dovrolis, the paper's ref. \[20\]):
//! send a short stream of small packets at a trial rate `R`; if
//! `R > avail-bw`, the stream backs up at the bottleneck and its one-way
//! delays (OWDs) show an **increasing trend**; if `R < avail-bw` they do
//! not. A grow-then-bisect search over `R` brackets the avail-bw.
//!
//! Trend detection follows pathload's two metrics over the medians of
//! `⌈√K⌉` groups of the stream's OWDs:
//!
//! * **PCT** (pairwise comparison test): the fraction of consecutive
//!   group-median increases;
//! * **PDT** (pairwise difference test): net increase over total
//!   variation.
//!
//! A stream that loses a large fraction of its packets is itself evidence
//! the trial rate exceeds the avail-bw.
//!
//! Simplifications relative to the real tool (recorded in DESIGN.md):
//! one stream per trial rate by default (configurable), verdicts are
//! binary (the ambiguous "grey region" folds into *not increasing*), and
//! the sender reads the receiver's OWD log through shared state rather
//! than a return control channel — the measurement traffic itself is
//! simulated faithfully.

use std::cell::RefCell;
use std::rc::Rc;
use tputpred_netsim::sources::GapMemo;
use tputpred_netsim::{
    Ctx, Endpoint, EndpointId, Packet, Payload, ProbeMeta, Route, Simulator, Time,
};

/// Pathload parameters.
#[derive(Debug, Clone, Copy)]
pub struct PathloadConfig {
    /// Probe packet wire size (small, to sample the queue without filling
    /// it).
    pub packet_size: u32,
    /// Packets per stream (`K`) at rates where the stream fits in
    /// [`PathloadConfig::max_stream_duration`]; low trial rates shrink
    /// the stream (never below 12 packets) so the measurement's wall
    /// time stays bounded.
    pub packets_per_stream: u32,
    /// Upper bound on one stream's duration; caps `K·size·8/rate`.
    pub max_stream_duration: Time,
    /// Streams sent per trial rate; the rate's verdict is the majority
    /// of the streams, which samples several phases of bursty cross
    /// traffic. (Some residual overestimation on bursty paths remains —
    /// the bias the paper itself observed in pathload, §4.2.1.)
    pub streams_per_rate: u32,
    /// Lowest trial rate; also the estimate on a saturated path.
    pub min_rate: f64,
    /// Highest trial rate; also the estimate when no rate loads the path.
    pub max_rate: f64,
    /// Bisection stops when `hi − lo ≤ resolution_fraction · hi`.
    pub resolution_fraction: f64,
    /// Idle gap after a stream before evaluating it (lets the queue
    /// drain and stragglers arrive).
    pub eval_wait: Time,
    /// Hard cap on streams per measurement (the measurement returns its
    /// current bracket midpoint when exhausted).
    pub max_streams: u32,
}

impl Default for PathloadConfig {
    fn default() -> Self {
        PathloadConfig {
            packet_size: 200,
            packets_per_stream: 300,
            max_stream_duration: Time::from_millis(200),
            streams_per_rate: 3,
            min_rate: 50e3,
            max_rate: 200e6,
            resolution_fraction: 0.10,
            eval_wait: Time::from_millis(200),
            max_streams: 48,
        }
    }
}

/// Outcome of one avail-bw measurement.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PathloadResult {
    /// The estimate `Â` in bits/s, once available.
    pub estimate: Option<f64>,
    /// Streams actually sent.
    pub streams_used: u32,
    /// True once the search has converged or exhausted its budget.
    pub done: bool,
    /// Current search bracket `(lo, hi)` in bits/s, updated after every
    /// stream — lets a driver whose measurement slot expires mid-search
    /// take the bracket midpoint as its best guess.
    pub bracket: (f64, f64),
}

impl PathloadResult {
    /// The converged estimate, or the current bracket midpoint if the
    /// search is still running. `None` before the first verdict.
    pub fn best_guess(&self) -> Option<f64> {
        self.estimate
            .or_else(|| (self.bracket.1 > 0.0).then(|| (self.bracket.0 + self.bracket.1) / 2.0))
    }
}

/// Shared handle to a measurement's result.
pub type PathloadHandle = Rc<RefCell<PathloadResult>>;

/// Per-stream OWD log, written by the receiving endpoint.
type OwdLog = Rc<RefCell<Vec<Vec<(u64, Time)>>>>;

/// The verdict of one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trend {
    Increasing,
    NotIncreasing,
}

/// PCT/PDT trend detection over a stream's (seq, OWD) samples.
fn detect_trend(samples: &[(u64, Time)], sent: u32) -> Trend {
    // Loss within the stream is overload evidence: a rate below the
    // avail-bw leaves the queue with room for 200-byte probes, so even a
    // few percent of in-stream loss means the trial rate (plus cross
    // traffic) exceeds the spare capacity.
    if (samples.len() as f64) < 0.95 * sent as f64 {
        return Trend::Increasing;
    }
    if samples.len() < 8 {
        return Trend::NotIncreasing;
    }
    let mut owds: Vec<f64> = {
        let mut s = samples.to_vec();
        s.sort_by_key(|&(seq, _)| seq);
        s.iter().map(|&(_, d)| d.as_secs_f64()).collect()
    };
    let n = owds.len();
    let groups = (n as f64).sqrt().ceil() as usize;
    let per = n / groups;
    let mut medians = Vec::with_capacity(groups);
    for g in 0..groups {
        let start = g * per;
        let end = if g == groups - 1 { n } else { start + per };
        let chunk = &mut owds[start..end];
        chunk.sort_by(f64::total_cmp);
        medians.push(chunk[chunk.len() / 2]);
    }
    let mut increases = 0usize;
    let mut total_var = 0.0f64;
    for w in medians.windows(2) {
        if w[1] > w[0] {
            increases += 1;
        }
        total_var += (w[1] - w[0]).abs();
    }
    let pct = increases as f64 / (medians.len() - 1) as f64;
    let pdt = if total_var > 0.0 {
        (medians[medians.len() - 1] - medians[0]) / total_var
    } else {
        0.0
    };
    // Two accepting conditions:
    //
    // * PCT and PDT agree — a genuine overload ramp is strongly monotone
    //   and drives both toward 1. (PCT alone fires on ~1/3 of pure-noise
    //   streams: P(≥4 of 6 random increases) ≈ 0.34.)
    // * PDT alone is very high — a *plateaued* queue (shallow buffer
    //   fills early in the stream, OWDs ramp then flatten at the buffer
    //   ceiling) defeats PCT because most group-to-group steps are flat,
    //   but the net drift still dominates the total variation.
    if (pct > 0.66 && pdt > 0.40) || pdt > 0.70 {
        Trend::Increasing
    } else {
        Trend::NotIncreasing
    }
}

/// Search phase.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Exponential growth until a rate loads the path. `last_good` is
    /// the highest rate already verified as *not increasing*, which
    /// seeds the lower bisection bound (falling back to `min_rate` when
    /// the very first stream already loads the path).
    Grow { last_good: Option<f64> },
    /// Bisection between `lo` (not increasing) and `hi` (increasing).
    Bisect { lo: f64, hi: f64 },
}

const TOKEN_SEND: u64 = 1;
const TOKEN_EVAL: u64 = 2;

/// The sending side of a pathload measurement. Drives the whole search;
/// bootstrapped by a `TOKEN_SEND` timer (see [`Pathload::deploy`]).
pub struct Pathload {
    config: PathloadConfig,
    route: Route,
    dst: EndpointId,
    owds: OwdLog,
    result: PathloadHandle,

    phase: Phase,
    rate: f64,
    stream_idx: u32,
    pkt_idx: u32,
    /// Packets in the stream currently being sent (rate-dependent).
    stream_pkts: u32,
    /// Verdicts of the streams sent at the current rate.
    verdicts: Vec<Trend>,
    /// Memoized probe gap at the current trial rate.
    gap_memo: GapMemo,
}

/// The receiving side: logs each probe's one-way delay per stream.
pub struct PathloadSink {
    owds: OwdLog,
}

impl Endpoint for PathloadSink {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        if let Payload::Probe(meta) = packet.payload {
            let mut log = self.owds.borrow_mut();
            let stream = meta.stream as usize;
            if log.len() <= stream {
                log.resize_with(stream + 1, Vec::new);
            }
            log[stream].push((meta.seq, ctx.now.saturating_sub(meta.sent_at)));
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
}

impl Pathload {
    /// Installs a pathload measurement into `sim`: a sink endpoint at the
    /// far end of `route` and the probing endpoint, bootstrapped at
    /// `start`. Returns the shared result handle.
    ///
    /// Run the simulation forward and read the handle once `done` (the
    /// search needs on the order of
    /// `max_streams × (stream duration + eval_wait)` of simulated time;
    /// with defaults, well under a minute).
    pub fn deploy(
        sim: &mut Simulator,
        config: PathloadConfig,
        route: Route,
        start: Time,
    ) -> PathloadHandle {
        let owds: OwdLog = Rc::new(RefCell::new(Vec::new()));
        let sink = PathloadSink {
            owds: Rc::clone(&owds),
        };
        let sink_id = sim.add_endpoint(Box::new(sink));
        let result = PathloadHandle::default();
        // The grow phase starts a few doublings below max_rate rather
        // than at min_rate: real pathload likewise begins near a coarse
        // first guess, and starting extremely low would waste the
        // measurement slot on near-idle streams.
        let start_rate = (config.max_rate / 64.0).max(config.min_rate);
        let mut prober = Pathload {
            rate: start_rate,
            config,
            route,
            dst: sink_id,
            owds,
            result: Rc::clone(&result),
            phase: Phase::Grow { last_good: None },
            stream_idx: 0,
            pkt_idx: 0,
            stream_pkts: 0,
            verdicts: Vec::new(),
            gap_memo: GapMemo::EMPTY,
        };
        prober.stream_pkts = prober.packets_for_rate();
        let prober_id = sim.add_endpoint(Box::new(prober));
        sim.schedule_timer(prober_id, TOKEN_SEND, start);
        result
    }

    fn finish(&mut self, estimate: f64) {
        let mut r = self.result.borrow_mut();
        r.estimate = Some(estimate);
        r.streams_used = self.stream_idx;
        r.done = true;
        r.bracket = (estimate, estimate);
    }

    fn publish_bracket(&self) {
        let bracket = match self.phase {
            Phase::Grow { last_good } => (
                last_good.unwrap_or(self.config.min_rate),
                self.rate.max(self.config.min_rate * 2.0),
            ),
            Phase::Bisect { lo, hi } => (lo, hi),
        };
        let mut r = self.result.borrow_mut();
        r.bracket = bracket;
        r.streams_used = self.stream_idx;
    }

    fn send_gap(&mut self) -> Time {
        self.gap_memo.tx_time(self.config.packet_size, self.rate)
    }

    /// Stream length at the current rate: the configured `K`, shrunk so
    /// the stream never exceeds `max_stream_duration` (floor 12 packets).
    fn packets_for_rate(&self) -> u32 {
        let by_duration = (self.rate * self.config.max_stream_duration.as_secs_f64()
            / (8.0 * self.config.packet_size as f64)) as u32;
        by_duration.clamp(12, self.config.packets_per_stream)
    }

    /// Verdict for the current rate: the majority of its streams.
    fn rate_verdict(&self) -> Trend {
        let inc = self
            .verdicts
            .iter()
            .filter(|&&v| v == Trend::Increasing)
            .count();
        if 2 * inc > self.verdicts.len() {
            Trend::Increasing
        } else {
            Trend::NotIncreasing
        }
    }

    fn advance_search(&mut self, ctx: &mut Ctx<'_>) {
        let verdict = self.rate_verdict();
        self.verdicts.clear();
        match self.phase {
            Phase::Grow { last_good } => match verdict {
                Trend::NotIncreasing => {
                    if self.rate >= self.config.max_rate {
                        self.finish(self.config.max_rate);
                        return;
                    }
                    self.phase = Phase::Grow {
                        last_good: Some(self.rate),
                    };
                    self.rate = (self.rate * 2.0).min(self.config.max_rate);
                }
                Trend::Increasing => {
                    if self.rate <= self.config.min_rate {
                        // Even the lowest rate loads the path.
                        self.finish(self.config.min_rate);
                        return;
                    }
                    // Bisect between the last VERIFIED non-increasing
                    // rate and this one. If the very first stream loaded
                    // the path (the grow phase starts above min_rate),
                    // the bracket floor is min_rate, not an untested
                    // half-rate.
                    let lo = last_good.unwrap_or(self.config.min_rate);
                    self.phase = Phase::Bisect { lo, hi: self.rate };
                    self.rate = (lo + self.rate) / 2.0;
                }
            },
            Phase::Bisect { lo, hi } => {
                let (lo, hi) = match verdict {
                    Trend::Increasing => (lo, self.rate),
                    Trend::NotIncreasing => (self.rate, hi),
                };
                if hi - lo <= self.config.resolution_fraction * hi {
                    self.finish((lo + hi) / 2.0);
                    return;
                }
                self.phase = Phase::Bisect { lo, hi };
                self.rate = (lo + hi) / 2.0;
            }
        }
        if self.stream_idx >= self.config.max_streams {
            // Budget exhausted: report the current bracket midpoint.
            let estimate = match self.phase {
                Phase::Grow { .. } => self.rate,
                Phase::Bisect { lo, hi } => (lo + hi) / 2.0,
            };
            self.finish(estimate);
            return;
        }
        // Launch the next stream.
        self.publish_bracket();
        self.pkt_idx = 0;
        self.stream_pkts = self.packets_for_rate();
        ctx.set_timer_after(TOKEN_SEND, Time::ZERO);
    }
}

impl Endpoint for Pathload {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.result.borrow().done {
            return;
        }
        match token {
            TOKEN_SEND => {
                if self.pkt_idx < self.stream_pkts {
                    let meta = ProbeMeta {
                        seq: self.pkt_idx as u64,
                        stream: self.stream_idx,
                        sent_at: ctx.now,
                        is_reply: false,
                    };
                    ctx.send(
                        self.route,
                        self.dst,
                        self.config.packet_size,
                        Payload::Probe(meta),
                    );
                    self.pkt_idx += 1;
                    let gap = self.send_gap();
                    ctx.set_timer_after(TOKEN_SEND, gap);
                } else {
                    ctx.set_timer_after(TOKEN_EVAL, self.config.eval_wait);
                }
            }
            TOKEN_EVAL => {
                let samples = {
                    let log = self.owds.borrow();
                    log.get(self.stream_idx as usize)
                        .cloned()
                        .unwrap_or_default()
                };
                let trend = detect_trend(&samples, self.stream_pkts);
                self.verdicts.push(trend);
                self.stream_idx += 1;
                if (self.verdicts.len() as u32) < self.config.streams_per_rate
                    && self.stream_idx < self.config.max_streams
                {
                    // Another stream at the same rate.
                    self.pkt_idx = 0;
                    self.stream_pkts = self.packets_for_rate();
                    ctx.set_timer_after(TOKEN_SEND, Time::ZERO);
                } else {
                    self.advance_search(ctx);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tputpred_netsim::link::LinkConfig;
    use tputpred_netsim::sources::{PoissonSource, Sink, SourceConfig};
    use tputpred_netsim::{RateSchedule, Simulator};

    /// Runs a measurement on a `capacity` link carrying `cross` bits/s of
    /// Poisson cross traffic; returns the estimate.
    fn measure(capacity: f64, cross: f64, seed: u64) -> f64 {
        let mut sim = Simulator::new(seed);
        let fwd = sim.add_link(LinkConfig::new(capacity, Time::from_millis(20), 170));
        if cross > 0.0 {
            let (sink, _) = Sink::new();
            let sink_id = sim.add_endpoint(Box::new(sink));
            let (src, _) = PoissonSource::new(SourceConfig {
                route: Route::direct(fwd),
                dst: sink_id,
                packet_size: 1000,
                base_rate_bps: cross,
                schedule: RateSchedule::constant(1.0),
                stop: Time::MAX,
            });
            let src_id = sim.add_endpoint(Box::new(src));
            sim.schedule_timer(src_id, 0, Time::ZERO);
        }
        // Let the cross traffic reach steady state first.
        let handle = Pathload::deploy(
            &mut sim,
            PathloadConfig::default(),
            Route::direct(fwd),
            Time::from_secs(2),
        );
        sim.run_until(Time::from_secs(120));
        let r = handle.borrow();
        assert!(r.done, "search must converge within the horizon");
        r.estimate.expect("estimate present when done")
    }

    #[test]
    fn idle_path_estimates_near_capacity() {
        let est = measure(10e6, 0.0, 31);
        assert!(
            (7e6..13e6).contains(&est),
            "idle 10 Mbps path: {:.2} Mbps",
            est / 1e6
        );
    }

    #[test]
    fn half_loaded_path_estimates_the_residual() {
        let est = measure(10e6, 5e6, 32);
        assert!(
            (3e6..7.5e6).contains(&est),
            "expected ≈5 Mbps residual, got {:.2} Mbps",
            est / 1e6
        );
    }

    #[test]
    fn heavily_loaded_path_estimates_small() {
        let est = measure(10e6, 9e6, 33);
        assert!(
            est < 3e6,
            "expected ≲1 Mbps residual, got {:.2} Mbps",
            est / 1e6
        );
    }

    #[test]
    fn slow_dsl_path_is_measurable() {
        let est = measure(1e6, 0.0, 34);
        assert!(
            (0.6e6..1.5e6).contains(&est),
            "idle 1 Mbps DSL: {:.2} Mbps",
            est / 1e6
        );
    }

    #[test]
    fn trend_detector_flags_monotone_owds() {
        let samples: Vec<(u64, Time)> = (0..60)
            .map(|i| (i, Time::from_micros(1000 + 50 * i)))
            .collect();
        assert_eq!(detect_trend(&samples, 60), Trend::Increasing);
    }

    #[test]
    fn trend_detector_accepts_flat_owds() {
        let samples: Vec<(u64, Time)> = (0..60).map(|i| (i, Time::from_micros(1000))).collect();
        assert_eq!(detect_trend(&samples, 60), Trend::NotIncreasing);
    }

    #[test]
    fn trend_detector_ignores_noise_without_trend() {
        let samples: Vec<(u64, Time)> = (0..60)
            .map(|i| (i, Time::from_micros(1000 + (i * 7919) % 200)))
            .collect();
        assert_eq!(detect_trend(&samples, 60), Trend::NotIncreasing);
    }

    #[test]
    fn heavy_stream_loss_reads_as_overload() {
        let samples: Vec<(u64, Time)> = (0..20).map(|i| (i, Time::from_micros(1000))).collect();
        assert_eq!(detect_trend(&samples, 60), Trend::Increasing);
    }

    #[test]
    fn slight_stream_loss_also_reads_as_overload() {
        // 56/60 delivered (6.7% loss): above the 5% gate.
        let samples: Vec<(u64, Time)> = (0..56).map(|i| (i, Time::from_micros(1000))).collect();
        assert_eq!(detect_trend(&samples, 60), Trend::Increasing);
    }

    #[test]
    fn plateaued_queue_reads_as_overload() {
        // OWDs ramp for the first third, then sit at the buffer ceiling:
        // PCT is low (flat majority) but the net drift dominates.
        let samples: Vec<(u64, Time)> = (0..60)
            .map(|i| {
                let owd = if i < 20 { 1000 + 800 * i } else { 17_000 };
                (i, Time::from_micros(owd))
            })
            .collect();
        assert_eq!(detect_trend(&samples, 60), Trend::Increasing);
    }

    #[test]
    fn measurement_is_deterministic() {
        assert_eq!(measure(10e6, 5e6, 77), measure(10e6, 5e6, 77));
    }
}
