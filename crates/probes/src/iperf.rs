//! The IPerf-style target flow: a fixed-duration bulk TCP transfer with a
//! configurable socket buffer, measured by delivered bytes (§4.1).

use tputpred_netsim::{Route, Simulator, Time};
use tputpred_tcp::{connect, FlowHandle, TcpConfig};

/// A measured bulk transfer — the *target flow* whose throughput the
/// predictors try to predict.
///
/// Thin orchestration over [`tputpred_tcp::connect`]: records the
/// transfer window `[start, stop)` and computes the achieved average
/// throughput (and prefix throughputs, for §4.2.7's 30/60/120-s analysis)
/// from sampled delivered-byte counts.
///
/// # Examples
///
/// ```
/// use tputpred_netsim::link::LinkConfig;
/// use tputpred_netsim::{Route, Simulator, Time};
/// use tputpred_probes::BulkTransfer;
/// use tputpred_tcp::TcpConfig;
///
/// let mut sim = Simulator::new(1);
/// let fwd = sim.add_link(LinkConfig::new(10e6, Time::from_millis(20), 67));
/// let rev = sim.add_link(LinkConfig::new(1e9, Time::from_millis(20), 700));
/// let transfer = BulkTransfer::launch(
///     &mut sim,
///     TcpConfig::default(),
///     Route::direct(fwd),
///     Route::direct(rev),
///     Time::ZERO,
///     Time::from_secs(10),
/// );
/// sim.run_until(Time::from_secs(10));
/// let r = transfer.throughput();
/// assert!(r > 7e6 && r <= 10e6);
/// ```
pub struct BulkTransfer {
    stats: FlowHandle,
    start: Time,
    stop: Time,
}

impl BulkTransfer {
    /// Starts a bulk transfer in `sim` over `fwd_route`/`rev_route`,
    /// transmitting on `[start, stop)`.
    pub fn launch(
        sim: &mut Simulator,
        config: TcpConfig,
        fwd_route: Route,
        rev_route: Route,
        start: Time,
        stop: Time,
    ) -> Self {
        let (_, _, stats) = connect(sim, config, fwd_route, rev_route, start, stop);
        BulkTransfer { stats, start, stop }
    }

    /// The flow's statistics handle (RTT samples, loss events, ...).
    pub fn stats(&self) -> &FlowHandle {
        &self.stats
    }

    /// Transfer start time.
    pub fn start(&self) -> Time {
        self.start
    }

    /// Transfer stop time.
    pub fn stop(&self) -> Time {
        self.stop
    }

    /// Bytes delivered so far — sample this at chosen instants for prefix
    /// throughputs.
    pub fn delivered_bytes(&self) -> u64 {
        self.stats.borrow().bytes_delivered
    }

    /// Average throughput over the full transfer window (bits/s). Read
    /// after running the simulation to (at least) `stop`.
    pub fn throughput(&self) -> f64 {
        self.throughput_over(self.stop - self.start)
    }

    /// Average throughput over the first `prefix` of the transfer, given
    /// the delivered-byte count sampled at `start + prefix`.
    ///
    /// The §4.2.7 protocol: run the simulation to `start + prefix`, call
    /// [`BulkTransfer::delivered_bytes`], and divide — this method does
    /// the division for the *current* sample, so only call it when the
    /// simulation clock sits at `start + prefix`.
    pub fn throughput_over(&self, prefix: Time) -> f64 {
        let bytes = self.delivered_bytes();
        if prefix == Time::ZERO {
            0.0
        } else {
            bytes as f64 * 8.0 / prefix.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tputpred_netsim::link::LinkConfig;

    fn world(seed: u64) -> (Simulator, Route, Route) {
        let mut sim = Simulator::new(seed);
        let fwd = sim.add_link(LinkConfig::new(10e6, Time::from_millis(20), 33));
        let rev = sim.add_link(LinkConfig::new(1e9, Time::from_millis(20), 700));
        (sim, Route::direct(fwd), Route::direct(rev))
    }

    #[test]
    fn full_window_throughput_is_near_capacity() {
        let (mut sim, fwd, rev) = world(41);
        let t = BulkTransfer::launch(
            &mut sim,
            TcpConfig::default(),
            fwd,
            rev,
            Time::ZERO,
            Time::from_secs(20),
        );
        sim.run_until(Time::from_secs(20));
        let r = t.throughput();
        assert!(r > 7e6 && r <= 10e6, "{:.2} Mbps", r / 1e6);
    }

    #[test]
    fn prefix_throughput_reflects_slow_start_ramp() {
        let (mut sim, fwd, rev) = world(42);
        let t = BulkTransfer::launch(
            &mut sim,
            TcpConfig::default(),
            fwd,
            rev,
            Time::ZERO,
            Time::from_secs(30),
        );
        sim.run_until(Time::from_millis(500));
        let early = t.throughput_over(Time::from_millis(500));
        sim.run_until(Time::from_secs(30));
        let full = t.throughput();
        assert!(
            early < full,
            "slow start makes the first 0.5 s slower: {early} vs {full}"
        );
    }

    #[test]
    fn delayed_start_window_is_respected() {
        let (mut sim, fwd, rev) = world(43);
        let start = Time::from_secs(5);
        let t = BulkTransfer::launch(
            &mut sim,
            TcpConfig::default(),
            fwd,
            rev,
            start,
            Time::from_secs(15),
        );
        sim.run_until(Time::from_secs(4));
        assert_eq!(t.delivered_bytes(), 0);
        sim.run_until(Time::from_secs(15));
        assert!(t.throughput() > 6e6);
    }
}
