//! Cross-tool integration tests: the measurement tools observing the
//! same simulated world must agree with its ground truth and with each
//! other — the premise of using them as FB-predictor inputs.

use tputpred_netsim::link::LinkConfig;
use tputpred_netsim::sources::{PoissonSource, Reflector, Sink, SourceConfig};
use tputpred_netsim::{LinkId, RateSchedule, Route, Simulator, Time};
use tputpred_probes::ping::PingProber;
use tputpred_probes::{BulkTransfer, Pathload, PathloadConfig};
use tputpred_tcp::TcpConfig;

struct World {
    sim: Simulator,
    fwd: LinkId,
    rev: LinkId,
    refl: tputpred_netsim::EndpointId,
}

fn world(seed: u64, capacity: f64, cross: f64, buffer: u32) -> World {
    let mut sim = Simulator::new(seed);
    let fwd = sim.add_link(LinkConfig::new(capacity, Time::from_millis(25), buffer));
    let rev = sim.add_link(LinkConfig::new(1e9, Time::from_millis(25), 1000));
    if cross > 0.0 {
        let (sink, _) = Sink::new();
        let sink_id = sim.add_endpoint(Box::new(sink));
        let (src, _) = PoissonSource::new(SourceConfig {
            route: Route::direct(fwd),
            dst: sink_id,
            packet_size: 1000,
            base_rate_bps: cross,
            schedule: RateSchedule::constant(1.0),
            stop: Time::MAX,
        });
        let id = sim.add_endpoint(Box::new(src));
        sim.schedule_timer(id, 0, Time::ZERO);
    }
    let (reflector, _) = Reflector::new(Route::direct(rev));
    let refl = sim.add_endpoint(Box::new(reflector));
    World {
        sim,
        fwd,
        rev,
        refl,
    }
}

#[test]
fn ping_rtt_tracks_ground_truth_queueing() {
    // 60%-loaded 10 Mbps link: ping's mean RTT must equal base RTT plus
    // the link's measured mean queueing delay (within serialization
    // slack).
    let mut w = world(1, 10e6, 6e6, 60);
    let (prober, stats) = PingProber::new(
        Route::direct(w.fwd),
        w.refl,
        Time::from_millis(100),
        Time::from_secs(60),
    );
    let id = w.sim.add_endpoint(Box::new(prober));
    w.sim.schedule_timer(id, 0, Time::ZERO);
    w.sim.run_until(Time::from_secs(65));
    let summary = stats.borrow().summarize(Time::ZERO, Time::from_secs(60));
    let mean_queue = w.sim.link(w.fwd).stats().queue_delay.mean();
    let base = 0.050;
    let expected = base + mean_queue;
    assert!(
        (summary.rtt - expected).abs() < 0.004,
        "ping RTT {:.4} vs base+queue {:.4}",
        summary.rtt,
        expected
    );
}

#[test]
fn pathload_and_transfer_agree_on_a_quiet_path() {
    // On a lightly loaded path with ample buffer, the avail-bw estimate
    // and the achieved bulk-transfer throughput should be within ~40% of
    // each other (the regime where FB's avail-bw branch works).
    let mut w = world(2, 10e6, 2e6, 80);
    let handle = Pathload::deploy(
        &mut w.sim,
        PathloadConfig::default(),
        Route::direct(w.fwd),
        Time::ZERO,
    );
    w.sim.run_until(Time::from_secs(20));
    let a_hat = handle.borrow().best_guess().expect("estimate");
    let transfer = BulkTransfer::launch(
        &mut w.sim,
        TcpConfig::default(),
        Route::direct(w.fwd),
        Route::direct(w.rev),
        Time::from_secs(20),
        Time::from_secs(50),
    );
    w.sim.run_until(Time::from_secs(50));
    let r = transfer.throughput();
    let ratio = a_hat / r;
    assert!(
        (0.7..1.8).contains(&ratio),
        "A^ = {:.2} Mbps vs R = {:.2} Mbps",
        a_hat / 1e6,
        r / 1e6
    );
}

#[test]
fn ping_sees_the_transfers_load_increase() {
    // §3.2's mechanism, observed through the tools alone: the during-
    // transfer ping RTT must exceed the pre-transfer ping RTT when a
    // saturating flow shares the queue.
    let mut w = world(3, 10e6, 3e6, 60);
    let (prober, stats) = PingProber::new(
        Route::direct(w.fwd),
        w.refl,
        Time::from_millis(100),
        Time::from_secs(120),
    );
    let id = w.sim.add_endpoint(Box::new(prober));
    w.sim.schedule_timer(id, 0, Time::ZERO);
    let transfer_start = Time::from_secs(30);
    let transfer_end = Time::from_secs(60);
    let _transfer = BulkTransfer::launch(
        &mut w.sim,
        TcpConfig::default(),
        Route::direct(w.fwd),
        Route::direct(w.rev),
        transfer_start,
        transfer_end,
    );
    w.sim.run_until(Time::from_secs(70));
    let ping = stats.borrow();
    let before = ping.summarize(Time::ZERO, transfer_start - Time::from_secs(1));
    let during = ping.summarize(transfer_start, transfer_end - Time::from_secs(1));
    assert!(
        during.rtt > before.rtt + 0.002,
        "T~ {:.4} should exceed T^ {:.4} while the flow fills the queue",
        during.rtt,
        before.rtt
    );
}

#[test]
fn concurrent_tools_do_not_deadlock_or_interfere_fatally() {
    // Everything at once, as in a real epoch: pathload, ping, and two
    // transfers back to back — the full Fig. 1 timeline compressed.
    let mut w = world(4, 10e6, 4e6, 60);
    let (prober, ping) = PingProber::new(
        Route::direct(w.fwd),
        w.refl,
        Time::from_millis(100),
        Time::from_secs(90),
    );
    let id = w.sim.add_endpoint(Box::new(prober));
    w.sim.schedule_timer(id, 0, Time::ZERO);
    let pathload = Pathload::deploy(
        &mut w.sim,
        PathloadConfig::default(),
        Route::direct(w.fwd),
        Time::ZERO,
    );
    let t1 = BulkTransfer::launch(
        &mut w.sim,
        TcpConfig::default(),
        Route::direct(w.fwd),
        Route::direct(w.rev),
        Time::from_secs(30),
        Time::from_secs(50),
    );
    let t2 = BulkTransfer::launch(
        &mut w.sim,
        TcpConfig {
            max_window: 20 * 1024,
            ..TcpConfig::default()
        },
        Route::direct(w.fwd),
        Route::direct(w.rev),
        Time::from_secs(55),
        Time::from_secs(75),
    );
    w.sim.run_until(Time::from_secs(90));
    assert!(pathload.borrow().done);
    assert!(t1.throughput() > 0.0);
    assert!(t2.throughput() > 0.0);
    let s = ping.borrow().summarize(Time::ZERO, Time::from_secs(85));
    assert!(s.sent > 800, "ping kept running throughout: {}", s.sent);
}
