//! Property-based invariants of the TCP Reno implementation over random
//! path parameters: conservation, capacity laws, window laws, and
//! determinism.

use proptest::prelude::*;
use tputpred_netsim::link::LinkConfig;
use tputpred_netsim::{Route, Simulator, Time};
use tputpred_tcp::{connect, TcpConfig};

struct Outcome {
    delivered: u64,
    segments_sent: u64,
    retransmits: u64,
    timeouts: u64,
    fast_retransmits: u64,
    rtt_min: f64,
    rtt_count: u64,
}

fn run_flow(
    seed: u64,
    rate_mbps: f64,
    one_way_ms: u64,
    buffer: u32,
    window_kb: u32,
    secs: u64,
) -> Outcome {
    let mut sim = Simulator::new(seed);
    let fwd = sim.add_link(LinkConfig::new(
        rate_mbps * 1e6,
        Time::from_millis(one_way_ms),
        buffer,
    ));
    let rev = sim.add_link(LinkConfig::new(1e9, Time::from_millis(one_way_ms), 1000));
    let config = TcpConfig {
        max_window: window_kb * 1024,
        ..TcpConfig::default()
    };
    let (_, _, stats) = connect(
        &mut sim,
        config,
        Route::direct(fwd),
        Route::direct(rev),
        Time::ZERO,
        Time::from_secs(secs),
    );
    sim.run_until(Time::from_secs(secs + 30));
    let s = stats.borrow();
    Outcome {
        delivered: s.bytes_delivered,
        segments_sent: s.segments_sent,
        retransmits: s.retransmits,
        timeouts: s.timeouts,
        fast_retransmits: s.fast_retransmits,
        rtt_min: s.rtt.min(),
        rtt_count: s.rtt.count(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn delivery_is_bounded_by_transmissions_and_capacity(
        seed in 0u64..500,
        rate in 1.0f64..30.0,
        one_way in 5u64..80,
        buffer in 6u32..120,
        window_kb in 8u32..1024,
    ) {
        let secs = 6;
        let o = run_flow(seed, rate, one_way, buffer, window_kb, secs);
        // Conservation: goodput never exceeds what was sent.
        prop_assert!(o.delivered <= o.segments_sent * 1448);
        prop_assert!(o.retransmits <= o.segments_sent);
        // Capacity law (with a small drain-tail allowance).
        let capacity_bytes = rate * 1e6 / 8.0 * (secs as f64 + 1.0);
        prop_assert!(
            (o.delivered as f64) <= capacity_bytes,
            "delivered {} over a {} Mbps link in {}s",
            o.delivered, rate, secs
        );
        // Window law: throughput ≤ W/RTT (RTT at least the propagation).
        let rtt = 2.0 * one_way as f64 / 1e3;
        let w_over_t_bytes = window_kb as f64 * 1024.0 / rtt * (secs as f64 + 1.0);
        prop_assert!(
            (o.delivered as f64) <= w_over_t_bytes * 1.05,
            "delivered {} exceeds W/T bound {}",
            o.delivered, w_over_t_bytes
        );
    }

    #[test]
    fn rtt_samples_respect_propagation_delay(
        seed in 0u64..500,
        rate in 2.0f64..30.0,
        one_way in 5u64..80,
    ) {
        let o = run_flow(seed, rate, one_way, 64, 256, 5);
        if o.rtt_count > 0 {
            let propagation = 2.0 * one_way as f64 / 1e3;
            prop_assert!(
                o.rtt_min >= propagation * 0.999,
                "sampled {} below propagation {}",
                o.rtt_min, propagation
            );
        }
    }

    #[test]
    fn big_buffer_and_window_means_loss_free(
        seed in 0u64..500,
        one_way in 5u64..40,
    ) {
        // A dedicated 10 Mbps path with a giant buffer and a small window
        // (window-limited): no losses of any kind.
        let o = run_flow(seed, 10.0, one_way, 1000, 16, 5);
        prop_assert_eq!(o.retransmits, 0);
        prop_assert_eq!(o.timeouts, 0);
        prop_assert_eq!(o.fast_retransmits, 0);
        prop_assert!(o.delivered > 0);
    }

    #[test]
    fn flows_replay_bit_identically(
        seed in 0u64..500,
        rate in 1.0f64..20.0,
        buffer in 6u32..60,
    ) {
        let a = run_flow(seed, rate, 20, buffer, 1024, 4);
        let b = run_flow(seed, rate, 20, buffer, 1024, 4);
        prop_assert_eq!(a.delivered, b.delivered);
        prop_assert_eq!(a.segments_sent, b.segments_sent);
        prop_assert_eq!(a.retransmits, b.retransmits);
        prop_assert_eq!(a.timeouts, b.timeouts);
    }
}
