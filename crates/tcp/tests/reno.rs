//! End-to-end TCP Reno behaviour over the simulator: the protocol
//! properties the paper's throughput models assume.

use tputpred_netsim::link::LinkConfig;
use tputpred_netsim::sources::{CbrSource, Sink, SourceConfig};
use tputpred_netsim::{LinkId, RateSchedule, Route, Simulator, Time};
use tputpred_tcp::{connect, FlowHandle, FlowStats, TcpConfig};

/// A dumbbell path: a forward bottleneck and a fast, uncongested reverse
/// link for ACKs.
struct Path {
    sim: Simulator,
    fwd: LinkId,
    rev: LinkId,
}

fn dumbbell(rate_bps: f64, one_way: Time, buffer_packets: u32, seed: u64) -> Path {
    let mut sim = Simulator::new(seed);
    let fwd = sim.add_link(LinkConfig::new(rate_bps, one_way, buffer_packets));
    let rev = sim.add_link(LinkConfig::new(1e9, one_way, 1000));
    Path { sim, fwd, rev }
}

fn bulk_flow(path: &mut Path, config: TcpConfig, start: Time, stop: Time) -> FlowHandle {
    let (_, _, stats) = connect(
        &mut path.sim,
        config,
        Route::direct(path.fwd),
        Route::direct(path.rev),
        start,
        stop,
    );
    stats
}

fn throughput_of(stats: &FlowHandle, duration: Time) -> f64 {
    FlowStats::throughput_bps(stats.borrow().bytes_delivered, duration)
}

#[test]
fn lossless_flow_fills_the_pipe() {
    // 10 Mbps, 40 ms RTT, one-BDP buffer: steady state should run near
    // link capacity.
    let rtt = Time::from_millis(40);
    let bdp = LinkConfig::bdp_packets(10e6, rtt, 1500); // ≈33 packets
    let mut path = dumbbell(10e6, Time::from_millis(20), bdp, 1);
    let stop = Time::from_secs(30);
    let stats = bulk_flow(&mut path, TcpConfig::default(), Time::ZERO, stop);
    path.sim.run_until(stop);
    let tput = throughput_of(&stats, stop);
    assert!(
        tput > 8e6 && tput <= 10e6,
        "expected near-capacity, got {:.2} Mbps",
        tput / 1e6
    );
}

#[test]
fn window_limited_flow_runs_at_w_over_t() {
    // W = 20 kB, RTT = 100 ms → W/T = 1.6 Mbps on a 10 Mbps link.
    let config = TcpConfig {
        max_window: 20 * 1024,
        ..TcpConfig::default()
    };
    let mut path = dumbbell(10e6, Time::from_millis(50), 700, 2);
    let stop = Time::from_secs(30);
    let stats = bulk_flow(&mut path, config, Time::ZERO, stop);
    path.sim.run_until(stop);
    let tput = throughput_of(&stats, stop);
    let w_over_t = 8.0 * 20.0 * 1024.0 / 0.100;
    assert!(
        (tput / w_over_t - 1.0).abs() < 0.2,
        "expected ≈{:.2} Mbps, got {:.2} Mbps",
        w_over_t / 1e6,
        tput / 1e6
    );
    // A window-limited flow on a big-buffer path should see no losses.
    assert_eq!(stats.borrow().timeouts, 0);
    assert_eq!(stats.borrow().fast_retransmits, 0);
}

#[test]
fn droptail_losses_are_recovered_with_fast_retransmit() {
    // A shallow buffer (quarter BDP) forces periodic droptail losses.
    let rtt = Time::from_millis(80);
    let bdp = LinkConfig::bdp_packets(10e6, rtt, 1500);
    let mut path = dumbbell(10e6, Time::from_millis(40), (bdp / 4).max(2), 3);
    let stop = Time::from_secs(30);
    let stats = bulk_flow(&mut path, TcpConfig::default(), Time::ZERO, stop);
    path.sim.run_until(stop);
    let s = stats.borrow();
    assert!(s.fast_retransmits > 0, "sawtooth must shed packets");
    assert!(s.retransmits > 0);
    // Despite losses the flow keeps most of the pipe full.
    let tput = FlowStats::throughput_bps(s.bytes_delivered, stop);
    assert!(
        tput > 4e6,
        "shallow-buffer flow still progresses: {:.2} Mbps",
        tput / 1e6
    );
    // Fast retransmit, not timeout, should dominate recovery.
    assert!(
        s.timeouts <= s.fast_retransmits,
        "timeouts {} vs fast retransmits {}",
        s.timeouts,
        s.fast_retransmits
    );
}

#[test]
fn rtt_samples_track_the_path_rtt() {
    let mut path = dumbbell(10e6, Time::from_millis(30), 700, 4);
    let stop = Time::from_secs(10);
    let config = TcpConfig {
        max_window: 16 * 1024, // keep queueing negligible
        ..TcpConfig::default()
    };
    let stats = bulk_flow(&mut path, config, Time::ZERO, stop);
    path.sim.run_until(stop);
    let s = stats.borrow();
    assert!(s.rtt.count() > 10, "enough RTT samples: {}", s.rtt.count());
    let mean = s.rtt.mean();
    assert!(
        (0.060..0.075).contains(&mean),
        "RTT ≈ 60 ms + serialization, got {:.1} ms",
        mean * 1e3
    );
    assert!(s.rtt.min() >= 0.060, "never below propagation");
}

#[test]
fn two_flows_share_the_bottleneck_roughly_fairly() {
    let rtt = Time::from_millis(40);
    let bdp = LinkConfig::bdp_packets(10e6, rtt, 1500);
    let mut path = dumbbell(10e6, Time::from_millis(20), bdp, 5);
    let stop = Time::from_secs(60);
    let a = bulk_flow(&mut path, TcpConfig::default(), Time::ZERO, stop);
    let b = bulk_flow(&mut path, TcpConfig::default(), Time::ZERO, stop);
    path.sim.run_until(stop);
    let ta = throughput_of(&a, stop);
    let tb = throughput_of(&b, stop);
    let total = ta + tb;
    assert!(
        total > 8e6,
        "together they fill the pipe: {:.2} Mbps",
        total / 1e6
    );
    let share = ta / total;
    assert!(
        (0.25..0.75).contains(&share),
        "rough fairness, flow A got {:.0}%",
        share * 100.0
    );
}

#[test]
fn tcp_yields_to_cbr_cross_traffic() {
    // CBR takes 60% of a 10 Mbps link; TCP should settle near the rest.
    let rtt = Time::from_millis(40);
    let bdp = LinkConfig::bdp_packets(10e6, rtt, 1500);
    let mut path = dumbbell(10e6, Time::from_millis(20), bdp, 6);
    let (sink, _rx) = Sink::new();
    let sink_id = path.sim.add_endpoint(Box::new(sink));
    let (cbr, _tx) = CbrSource::new(SourceConfig {
        route: Route::direct(path.fwd),
        dst: sink_id,
        packet_size: 1500,
        base_rate_bps: 6e6,
        schedule: RateSchedule::constant(1.0),
        stop: Time::MAX,
    });
    let cbr_id = path.sim.add_endpoint(Box::new(cbr));
    path.sim.schedule_timer(cbr_id, 0, Time::ZERO);
    let stop = Time::from_secs(60);
    let stats = bulk_flow(&mut path, TcpConfig::default(), Time::ZERO, stop);
    path.sim.run_until(stop);
    let tput = throughput_of(&stats, stop);
    assert!(
        tput > 1.5e6 && tput < 5.5e6,
        "TCP gets roughly the residual 4 Mbps, got {:.2} Mbps",
        tput / 1e6
    );
}

#[test]
fn flow_survives_a_total_blackout_via_timeout() {
    // Cross traffic saturates the link completely for 3 s: the flow must
    // take a retransmission timeout and then recover.
    let mut path = dumbbell(10e6, Time::from_millis(20), 33, 7);
    let (sink, _rx) = Sink::new();
    let sink_id = path.sim.add_endpoint(Box::new(sink));
    let schedule =
        RateSchedule::constant(0.0).with_burst(Time::from_secs(5), Time::from_secs(8), 1.0);
    let (cbr, _tx) = CbrSource::new(SourceConfig {
        route: Route::direct(path.fwd),
        dst: sink_id,
        packet_size: 1500,
        base_rate_bps: 40e6, // 4× the link: starves everything while on
        schedule,
        stop: Time::MAX,
    });
    let cbr_id = path.sim.add_endpoint(Box::new(cbr));
    path.sim.schedule_timer(cbr_id, 0, Time::ZERO);
    let stop = Time::from_secs(30);
    let stats = bulk_flow(&mut path, TcpConfig::default(), Time::ZERO, stop);
    path.sim.run_until(stop);
    let s = stats.borrow();
    assert!(s.timeouts > 0, "blackout must cause an RTO");
    let tput = FlowStats::throughput_bps(s.bytes_delivered, stop);
    assert!(
        tput > 3e6,
        "recovers after the blackout: {:.2} Mbps",
        tput / 1e6
    );
}

#[test]
fn sender_stops_and_drains_at_stop_time() {
    let mut path = dumbbell(10e6, Time::from_millis(20), 700, 8);
    let stop = Time::from_secs(5);
    let stats = bulk_flow(&mut path, TcpConfig::default(), Time::ZERO, stop);
    path.sim.run_until(Time::from_secs(10));
    let delivered_at_10 = stats.borrow().bytes_delivered;
    assert!(stats.borrow().finished, "flight drained after stop");
    path.sim.run_until(Time::from_secs(20));
    assert_eq!(
        stats.borrow().bytes_delivered,
        delivered_at_10,
        "nothing transmitted after the drain"
    );
}

#[test]
fn delayed_flow_start_is_respected() {
    let mut path = dumbbell(10e6, Time::from_millis(20), 700, 9);
    let start = Time::from_secs(10);
    let stats = bulk_flow(&mut path, TcpConfig::default(), start, Time::from_secs(20));
    path.sim.run_until(Time::from_secs(9));
    assert_eq!(stats.borrow().bytes_delivered, 0);
    assert_eq!(stats.borrow().segments_sent, 0);
    path.sim.run_until(Time::from_secs(20));
    assert!(stats.borrow().bytes_delivered > 0);
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut path = dumbbell(10e6, Time::from_millis(20), 17, 42);
        let stop = Time::from_secs(20);
        let stats = bulk_flow(&mut path, TcpConfig::default(), Time::ZERO, stop);
        path.sim.run_until(stop);
        let s = stats.borrow();
        (
            s.bytes_delivered,
            s.segments_sent,
            s.retransmits,
            s.timeouts,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn goodput_never_exceeds_sent_bytes() {
    let mut path = dumbbell(5e6, Time::from_millis(30), 13, 10);
    let stop = Time::from_secs(20);
    let stats = bulk_flow(&mut path, TcpConfig::default(), Time::ZERO, stop);
    path.sim.run_until(stop);
    let s = stats.borrow();
    assert!(s.bytes_delivered <= s.segments_sent * 1448);
    assert!(s.retransmits <= s.segments_sent);
}

#[test]
fn slower_link_means_proportionally_less_throughput() {
    let measure = |rate: f64| {
        let rtt = Time::from_millis(40);
        let bdp = LinkConfig::bdp_packets(rate, rtt, 1500);
        let mut path = dumbbell(rate, Time::from_millis(20), bdp.max(7), 11);
        let stop = Time::from_secs(30);
        let stats = bulk_flow(&mut path, TcpConfig::default(), Time::ZERO, stop);
        path.sim.run_until(stop);
        throughput_of(&stats, stop)
    };
    let slow = measure(2e6);
    let fast = measure(8e6);
    let ratio = fast / slow;
    assert!(
        (2.5..5.5).contains(&ratio),
        "4× capacity ≈ 4× throughput, got {ratio:.2}"
    );
}

#[test]
fn sized_transfer_delivers_exactly_its_budget_and_records_finish_time() {
    let mut path = dumbbell(10e6, Time::from_millis(20), 40, 21);
    let bytes = 64 * 1024u64;
    let (_, _, stats) = tputpred_tcp::connect_sized(
        &mut path.sim,
        TcpConfig::default(),
        Route::direct(path.fwd),
        Route::direct(path.rev),
        Time::ZERO,
        Time::from_secs(30),
        bytes,
    );
    path.sim.run_until(Time::from_secs(30));
    let s = stats.borrow();
    assert!(s.finished, "64 kB on an idle 10 Mbps path finishes fast");
    // Delivery counts whole segments: the budget rounds down to the MSS
    // grid (the sender never emits partial segments).
    let expected = (bytes / 1448) * 1448;
    assert_eq!(s.bytes_delivered, expected);
    let finished_at = s.finished_at.expect("finish time recorded");
    // Lower bound: ~45 segments through slow start at 40 ms RTT takes at
    // least a few RTTs; upper bound: must be well under a second.
    assert!(finished_at > Time::from_millis(80));
    assert!(
        finished_at < Time::from_secs(1),
        "finished at {finished_at}"
    );
}

#[test]
fn small_probe_underestimates_bulk_throughput() {
    // The NWS-critique mechanism (paper §2): a 64 kB probe lives entirely
    // in slow start, so its average throughput is far below what a bulk
    // transfer achieves on the same idle path.
    let mut path = dumbbell(20e6, Time::from_millis(30), 100, 22);
    let probe_cfg = TcpConfig {
        max_window: 32 * 1024, // NWS's socket buffer
        ..TcpConfig::default()
    };
    let (_, _, probe) = tputpred_tcp::connect_sized(
        &mut path.sim,
        probe_cfg,
        Route::direct(path.fwd),
        Route::direct(path.rev),
        Time::ZERO,
        Time::from_secs(10),
        64 * 1024,
    );
    path.sim.run_until(Time::from_secs(10));
    let probe_tput = {
        let s = probe.borrow();
        let t = s.finished_at.expect("probe finishes");
        s.bytes_delivered as f64 * 8.0 / t.as_secs_f64()
    };
    let stop = Time::from_secs(40);
    let bulk = bulk_flow(&mut path, TcpConfig::default(), Time::from_secs(10), stop);
    path.sim.run_until(stop);
    let bulk_tput = FlowStats::throughput_bps(bulk.borrow().bytes_delivered, Time::from_secs(30));
    assert!(
        probe_tput < bulk_tput / 2.0,
        "probe {:.2} Mbps vs bulk {:.2} Mbps",
        probe_tput / 1e6,
        bulk_tput / 1e6
    );
}

#[test]
fn newreno_repairs_multi_loss_windows_with_fewer_timeouts() {
    // A controlled multi-loss event: a 150 ms cross-traffic blast at 3x
    // the link rate drops a burst of segments out of one congestion
    // window. Reno exits fast recovery on the first partial ACK and must
    // usually wait out a retransmission timeout for the remaining holes;
    // NewReno repairs one hole per RTT and avoids most timeouts.
    use tputpred_netsim::sources::{CbrSource, Sink, SourceConfig};
    use tputpred_tcp::TcpFlavor;

    let run = |flavor: TcpFlavor| {
        let mut path = dumbbell(10e6, Time::from_millis(30), 30, 34);
        let (sink, _) = Sink::new();
        let sink_id = path.sim.add_endpoint(Box::new(sink));
        // Three short blasts, well separated.
        let schedule = RateSchedule::constant(0.0)
            .with_burst(Time::from_secs(5), Time::from_secs_f64(5.15), 1.0)
            .with_burst(Time::from_secs(12), Time::from_secs_f64(12.15), 1.0)
            .with_burst(Time::from_secs(19), Time::from_secs_f64(19.15), 1.0);
        let (src, _) = CbrSource::new(SourceConfig {
            route: Route::direct(path.fwd),
            dst: sink_id,
            packet_size: 1000,
            base_rate_bps: 30e6,
            schedule,
            stop: Time::MAX,
        });
        let id = path.sim.add_endpoint(Box::new(src));
        path.sim.schedule_timer(id, 0, Time::ZERO);
        let stop = Time::from_secs(26);
        let config = TcpConfig {
            flavor,
            ..TcpConfig::default()
        };
        let stats = bulk_flow(&mut path, config, Time::ZERO, stop);
        path.sim.run_until(stop);
        let s = stats.borrow();
        (s.timeouts, s.fast_retransmits, s.bytes_delivered)
    };
    let (reno_to, _, _) = run(TcpFlavor::Reno);
    let (nr_to, nr_fr, _) = run(TcpFlavor::NewReno);
    assert!(nr_fr > 0, "NewReno still uses fast retransmit");
    assert!(
        nr_to < reno_to,
        "NewReno repairs multi-loss windows without timing out: {nr_to} vs {reno_to}"
    );
}
