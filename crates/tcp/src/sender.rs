//! The TCP Reno sender: congestion control, loss recovery, timers.

use crate::flow::{FlowHandle, TcpConfig, TcpFlavor};
use crate::rto::RtoEstimator;
use tputpred_netsim::{Ctx, Endpoint, EndpointId, Packet, Payload, Route, TcpMeta, Time};

/// Timer token that starts the flow (armed by [`crate::connect`]).
pub const TOKEN_START: u64 = 0;

/// A bulk-transfer TCP Reno sender.
///
/// Models an IPerf-style application: unlimited data is available from the
/// start timer until `stop`; the sender transmits as the congestion window
/// (capped by the socket buffer `W`) allows. All of Reno's machinery is
/// here:
///
/// * **slow start** (`cwnd += MSS` per new ACK while `cwnd < ssthresh`)
///   and **congestion avoidance** (`cwnd += MSS²/cwnd` per new ACK);
/// * **fast retransmit** on the third duplicate ACK, entering **fast
///   recovery** with `ssthresh = max(flight/2, 2·MSS)`,
///   `cwnd = ssthresh + 3·MSS`, inflation by one MSS per further
///   duplicate, and full deflation to `ssthresh` on the recovery ACK;
/// * **retransmission timeout**: `ssthresh = max(flight/2, 2·MSS)`,
///   `cwnd = 1·MSS`, exponential backoff, and go-back-N resend (the
///   receiver's out-of-order buffer makes re-walking the sequence space
///   cheap, as in SACK-less stacks);
/// * **Karn's rule** via echoed timestamps: ACKs triggered by
///   retransmitted segments carry `retx = true` and are never sampled.
pub struct TcpSender {
    config: TcpConfig,
    route: Route,
    dst: EndpointId,
    stop: Time,
    /// Application bytes to transfer; `u64::MAX` for unbounded bulk flows.
    byte_limit: u64,
    stats: FlowHandle,

    started: bool,
    /// Oldest unacknowledged byte.
    snd_una: u64,
    /// Next byte to transmit.
    snd_nxt: u64,
    /// Highest byte ever transmitted (for marking retransmissions).
    snd_max: u64,
    /// Congestion window, bytes.
    cwnd: f64,
    /// Slow-start threshold, bytes.
    ssthresh: f64,
    dup_acks: u32,
    in_recovery: bool,
    /// `snd_nxt` at fast-recovery entry: NewReno's "recover" point — ACKs
    /// below it are partial, at or above it end recovery.
    recover: u64,
    rto: RtoEstimator,
    /// Generation counter for the retransmission timer: only a firing
    /// token equal to the current generation is live.
    rto_gen: u64,
    rto_armed: bool,
}

impl TcpSender {
    /// Creates a sender for `config`, transmitting over `route` to `dst`
    /// until `stop`. Bootstrapped by a [`TOKEN_START`] timer.
    pub fn new(
        config: TcpConfig,
        route: Route,
        dst: EndpointId,
        stop: Time,
        stats: FlowHandle,
    ) -> Self {
        Self::with_byte_limit(config, route, dst, stop, u64::MAX, stats)
    }

    /// Like [`TcpSender::new`], but the application hands over exactly
    /// `byte_limit` bytes: the flow finishes (and records
    /// [`crate::FlowStats::finished_at`]) once they are all acknowledged —
    /// a fixed-*size* transfer, like NWS's 64 KB probes or a file
    /// download, as opposed to IPerf's fixed-duration mode.
    pub fn with_byte_limit(
        config: TcpConfig,
        route: Route,
        dst: EndpointId,
        stop: Time,
        byte_limit: u64,
        stats: FlowHandle,
    ) -> Self {
        let mss = config.mss as f64;
        TcpSender {
            config,
            route,
            dst,
            stop,
            byte_limit,
            stats,
            started: false,
            snd_una: 0,
            snd_nxt: 0,
            snd_max: 0,
            cwnd: config.init_cwnd_segments as f64 * mss,
            ssthresh: config.max_window as f64,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            rto: RtoEstimator::new(config.min_rto, config.max_rto),
            rto_gen: 0,
            rto_armed: false,
        }
    }

    /// Bytes in flight.
    fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Effective send window: min(cwnd, W).
    fn window(&self) -> u64 {
        (self.cwnd.min(self.config.max_window as f64)) as u64
    }

    fn mss(&self) -> u64 {
        self.config.mss as u64
    }

    /// Transmits the segment starting at `seq`.
    fn send_segment(&mut self, ctx: &mut Ctx<'_>, seq: u64) {
        let retx = seq < self.snd_max;
        let meta = TcpMeta {
            seq,
            len: self.config.mss,
            ack: 0,
            is_ack: false,
            retx,
            echo: ctx.now,
        };
        ctx.send(
            self.route,
            self.dst,
            self.config.data_packet_size(),
            Payload::Tcp(meta),
        );
        let mut stats = self.stats.borrow_mut();
        stats.segments_sent += 1;
        if retx {
            stats.retransmits += 1;
        }
    }

    /// Sends as much new data as the window and the application allow.
    fn send_available(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.now >= self.stop {
            return;
        }
        let wnd = self.window();
        while self.flight() + self.mss() <= wnd && self.snd_nxt + self.mss() <= self.byte_limit {
            let seq = self.snd_nxt;
            self.send_segment(ctx, seq);
            self.snd_nxt += self.mss();
            self.snd_max = self.snd_max.max(self.snd_nxt);
        }
        if self.flight() > 0 && !self.rto_armed {
            self.arm_rto(ctx);
        }
    }

    /// True once the application has nothing left to send (sized
    /// transfers round their budget down to whole segments) or the clock
    /// passed `stop` (timed transfers). Only meaningful with an empty
    /// flight.
    fn is_done(&self, now: Time) -> bool {
        self.snd_nxt + self.mss() > self.byte_limit || now >= self.stop
    }

    fn arm_rto(&mut self, ctx: &mut Ctx<'_>) {
        self.rto_gen += 1;
        self.rto_armed = true;
        ctx.set_timer_after(self.rto_gen, self.rto.current());
    }

    fn disarm_rto(&mut self) {
        self.rto_gen += 1;
        self.rto_armed = false;
    }

    /// Multiplicative-decrease target after a loss event.
    fn halved_ssthresh(&self) -> f64 {
        let mss = self.config.mss as f64;
        (self.flight() as f64 / 2.0).max(2.0 * mss)
    }

    /// Records the current congestion window into the shared stats.
    /// Called after every window change; purely observational.
    fn sample_cwnd(&self) {
        self.stats.borrow_mut().cwnd_bytes.push(self.cwnd);
    }

    fn on_ack(&mut self, ctx: &mut Ctx<'_>, meta: TcpMeta) {
        let mss = self.config.mss as f64;
        if meta.ack > self.snd_una {
            // New data acknowledged.
            let bytes_acked = meta.ack - self.snd_una;
            self.snd_una = meta.ack;
            self.snd_nxt = self.snd_nxt.max(self.snd_una);
            if !meta.retx {
                let rtt = ctx.now.saturating_sub(meta.echo);
                self.rto.sample(rtt);
                self.stats.borrow_mut().rtt.push(rtt.as_secs_f64());
            }
            if self.in_recovery {
                match self.config.flavor {
                    TcpFlavor::Reno => {
                        // Any advancing ACK ends recovery; deflate fully.
                        self.in_recovery = false;
                        self.cwnd = self.ssthresh;
                    }
                    TcpFlavor::NewReno if meta.ack >= self.recover => {
                        // Full ACK: everything outstanding at recovery
                        // entry is in; deflate and leave.
                        self.in_recovery = false;
                        self.cwnd = self.ssthresh;
                    }
                    TcpFlavor::NewReno => {
                        // Partial ACK: the next hole is at the new
                        // snd_una — retransmit it immediately and stay in
                        // recovery (RFC 2582 §3 step 5), with partial
                        // window deflation.
                        let hole = self.snd_una;
                        self.send_segment(ctx, hole);
                        self.cwnd = (self.cwnd - bytes_acked as f64 + mss).max(2.0 * mss);
                        self.sample_cwnd();
                        self.arm_rto(ctx);
                        return;
                    }
                }
            } else if self.cwnd < self.ssthresh {
                self.cwnd += mss;
            } else {
                self.cwnd += mss * mss / self.cwnd;
            }
            self.sample_cwnd();
            self.dup_acks = 0;
            if self.flight() > 0 {
                self.arm_rto(ctx);
            } else {
                self.disarm_rto();
                if self.is_done(ctx.now) {
                    let mut stats = self.stats.borrow_mut();
                    if !stats.finished {
                        stats.finished = true;
                        stats.finished_at = Some(ctx.now);
                    }
                }
            }
            self.send_available(ctx);
        } else if meta.ack == self.snd_una && self.flight() > 0 {
            self.dup_acks += 1;
            if self.in_recovery {
                // Window inflation: one MSS per duplicate.
                self.cwnd += mss;
                self.sample_cwnd();
                self.send_available(ctx);
            } else if self.dup_acks == 3 {
                // Fast retransmit.
                self.ssthresh = self.halved_ssthresh();
                self.recover = self.snd_nxt;
                let una = self.snd_una;
                self.send_segment(ctx, una);
                self.cwnd = self.ssthresh + 3.0 * mss;
                self.sample_cwnd();
                self.in_recovery = true;
                self.stats.borrow_mut().fast_retransmits += 1;
                self.arm_rto(ctx);
            }
        }
    }

    fn on_rto(&mut self, ctx: &mut Ctx<'_>) {
        if self.flight() == 0 {
            self.rto_armed = false;
            return;
        }
        let mss = self.config.mss as f64;
        self.ssthresh = self.halved_ssthresh();
        self.cwnd = mss;
        self.sample_cwnd();
        self.in_recovery = false;
        self.dup_acks = 0;
        self.rto.backoff();
        self.stats.borrow_mut().timeouts += 1;
        // Go-back-N: re-walk the sequence space from snd_una. The segment
        // is retransmitted by send_available since snd_nxt rolls back.
        self.snd_nxt = self.snd_una;
        let una = self.snd_una;
        self.send_segment(ctx, una);
        self.snd_nxt += self.mss();
        self.arm_rto(ctx);
    }
}

impl Endpoint for TcpSender {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        if let Payload::Tcp(meta) = packet.payload {
            if meta.is_ack && self.started {
                self.on_ack(ctx, meta);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_START {
            if !self.started {
                self.started = true;
                self.send_available(ctx);
            }
        } else if token == self.rto_gen && self.rto_armed {
            self.on_rto(ctx);
        }
        // Stale generations fall through silently.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowStats;
    use std::cell::RefCell;
    use std::rc::Rc;
    use tputpred_netsim::link::LinkConfig;
    use tputpred_netsim::{LinkId, Simulator};

    /// Harness: drive a sender against a scripted ACK stream without a
    /// real receiver, capturing what it transmits.
    struct AckScript;

    fn handle() -> FlowHandle {
        Rc::new(RefCell::new(FlowStats::default()))
    }

    fn sender(stats: FlowHandle) -> TcpSender {
        TcpSender::new(
            TcpConfig::default(),
            Route::direct(LinkId(0)),
            EndpointId(99),
            Time::MAX,
            stats,
        )
    }

    #[test]
    fn initial_window_is_two_segments() {
        let s = sender(handle());
        assert_eq!(s.window(), 2 * 1448);
        assert_eq!(s.flight(), 0);
    }

    #[test]
    fn window_is_capped_by_socket_buffer() {
        let mut s = sender(handle());
        s.cwnd = 10e6;
        assert_eq!(s.window(), 1 << 20);
    }

    #[test]
    fn halved_ssthresh_has_two_mss_floor() {
        let mut s = sender(handle());
        s.snd_nxt = 1448; // one segment in flight
        assert_eq!(s.halved_ssthresh(), 2.0 * 1448.0);
        s.snd_nxt = 100 * 1448;
        assert_eq!(s.halved_ssthresh(), 50.0 * 1448.0);
    }

    // Full protocol behaviour (slow start growth, fast retransmit,
    // timeout recovery, throughput) is exercised end-to-end against the
    // real receiver in `tests/reno.rs`.
    #[test]
    fn smoke_send_on_start_timer() {
        let mut sim = Simulator::new(1);
        let link = sim.add_link(LinkConfig::new(10e6, Time::from_millis(10), 100));
        let stats = handle();
        let (sink, _rx) = tputpred_netsim::sources::Sink::new();
        let sink_id = sim.add_endpoint(Box::new(sink));
        let s = TcpSender::new(
            TcpConfig::default(),
            Route::direct(link),
            sink_id,
            Time::MAX,
            Rc::clone(&stats),
        );
        let sid = sim.add_endpoint(Box::new(s));
        sim.schedule_timer(sid, TOKEN_START, Time::ZERO);
        sim.run_until(Time::from_millis(100));
        // Initial window: exactly two segments transmitted, no ACKs back.
        assert_eq!(stats.borrow().segments_sent, 2);
        let _ = AckScript;
    }
}
