//! The TCP receiver: reassembly, cumulative + delayed ACKs.

use crate::flow::{FlowHandle, TcpConfig};
use std::collections::BTreeMap;
use tputpred_netsim::{Ctx, Endpoint, EndpointId, Packet, Payload, Route, TcpMeta, Time};

/// A bulk-transfer TCP receiver.
///
/// Maintains the in-order delivery point `rcv_nxt` and an out-of-order
/// reassembly buffer; generates
///
/// * a **delayed ACK** for every [`TcpConfig::ack_every`]-th in-order
///   segment (with the [`TcpConfig::delack_timeout`] cap so a lone
///   segment is acknowledged promptly),
/// * an **immediate duplicate ACK** for every out-of-order segment (the
///   signal fast retransmit counts), and
/// * an **immediate ACK** for segments below `rcv_nxt` (so a go-back-N
///   resend after a timeout advances the sender quickly).
///
/// ACKs echo the timestamp (and retransmission flag) of the segment that
/// triggered them — for a delayed ACK, of the *first* segment in the
/// batch — giving the sender Karn-safe RTT samples.
pub struct TcpReceiver {
    config: TcpConfig,
    rev_route: Route,
    stats: FlowHandle,
    /// Learned from the first data packet.
    sender: Option<EndpointId>,
    /// Next in-order byte expected.
    rcv_nxt: u64,
    /// Out-of-order segments: start → length.
    ooo: BTreeMap<u64, u32>,
    /// In-order segments received since the last ACK.
    unacked: u32,
    /// Echo values for the pending (delayed) ACK.
    pending_echo: Time,
    pending_retx: bool,
    /// Delayed-ACK timer generation.
    delack_gen: u64,
    delack_armed: bool,
}

impl TcpReceiver {
    /// Creates a receiver that acknowledges over `rev_route`.
    pub fn new(config: TcpConfig, rev_route: Route, stats: FlowHandle) -> Self {
        TcpReceiver {
            config,
            rev_route,
            stats,
            sender: None,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            unacked: 0,
            pending_echo: Time::ZERO,
            pending_retx: false,
            delack_gen: 0,
            delack_armed: false,
        }
    }

    /// The in-order delivery point (bytes delivered to the application).
    pub fn delivered(&self) -> u64 {
        self.rcv_nxt
    }

    fn send_ack(&mut self, ctx: &mut Ctx<'_>, echo: Time, retx: bool) {
        let Some(sender) = self.sender else { return };
        let meta = TcpMeta {
            seq: 0,
            len: 0,
            ack: self.rcv_nxt,
            is_ack: true,
            retx,
            echo,
        };
        ctx.send(
            self.rev_route,
            sender,
            self.config.ack_packet_size(),
            Payload::Tcp(meta),
        );
        self.unacked = 0;
        // Invalidate any pending delayed-ACK timer.
        self.delack_gen += 1;
        self.delack_armed = false;
    }

    fn on_data(&mut self, ctx: &mut Ctx<'_>, meta: TcpMeta) {
        if meta.seq == self.rcv_nxt {
            // In-order: advance, then drain the reassembly buffer.
            self.rcv_nxt += meta.len as u64;
            while let Some((&start, &len)) = self.ooo.first_key_value() {
                if start > self.rcv_nxt {
                    break;
                }
                self.ooo.remove(&start);
                let end = start + len as u64;
                self.rcv_nxt = self.rcv_nxt.max(end);
            }
            self.stats.borrow_mut().bytes_delivered = self.rcv_nxt;

            if self.unacked == 0 {
                self.pending_echo = meta.echo;
                self.pending_retx = meta.retx;
            }
            self.unacked += 1;
            if !self.ooo.is_empty() || self.unacked >= self.config.ack_every {
                // A hole remains (tell the sender now) or the batch is
                // full: acknowledge immediately.
                let (echo, retx) = (self.pending_echo, self.pending_retx);
                self.send_ack(ctx, echo, retx);
            } else if !self.delack_armed {
                self.delack_gen += 1;
                self.delack_armed = true;
                ctx.set_timer_after(self.delack_gen, self.config.delack_timeout);
            }
        } else if meta.seq > self.rcv_nxt {
            // Out of order: buffer it, emit a duplicate ACK immediately.
            self.ooo.entry(meta.seq).or_insert(meta.len);
            self.send_ack(ctx, meta.echo, true);
        } else {
            // Already-delivered data (go-back-N resend): re-ACK now so the
            // sender advances.
            self.send_ack(ctx, meta.echo, true);
        }
    }
}

impl Endpoint for TcpReceiver {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        if let Payload::Tcp(meta) = packet.payload {
            if !meta.is_ack {
                self.sender = Some(packet.src);
                self.on_data(ctx, meta);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == self.delack_gen && self.delack_armed && self.unacked > 0 {
            let (echo, retx) = (self.pending_echo, self.pending_retx);
            self.send_ack(ctx, echo, retx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowStats;
    use std::cell::RefCell;
    use std::rc::Rc;
    use tputpred_netsim::link::LinkConfig;
    use tputpred_netsim::Simulator;

    /// Sends a scripted sequence of data segments to the receiver, one per
    /// millisecond, and records every ACK that comes back.
    struct Injector {
        script: Vec<TcpMeta>,
        next: usize,
        route: Route,
        dst: EndpointId,
        acks: Rc<RefCell<Vec<TcpMeta>>>,
    }

    impl Endpoint for Injector {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, packet: Packet) {
            if let Payload::Tcp(meta) = packet.payload {
                if meta.is_ack {
                    self.acks.borrow_mut().push(meta);
                }
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            if let Some(meta) = self.script.get(self.next).copied() {
                self.next += 1;
                ctx.send(self.route, self.dst, meta.len + 52, Payload::Tcp(meta));
                ctx.set_timer_after(0, Time::from_millis(1));
            }
        }
    }

    // lint:allow(units): whole-ms test grid; converted via Time::from_millis below
    fn data(seq: u64, echo_ms: u64) -> TcpMeta {
        TcpMeta {
            seq,
            len: 1448,
            ack: 0,
            is_ack: false,
            retx: false,
            // lint:allow(units): conversion is explicit at the use site
            echo: Time::from_millis(echo_ms),
        }
    }

    /// Runs the script; returns (delivered_bytes, acks).
    fn run(script: Vec<TcpMeta>) -> (u64, Vec<TcpMeta>) {
        let mut sim = Simulator::new(2);
        let fwd = sim.add_link(LinkConfig::new(100e6, Time::from_millis(1), 100));
        let rev = sim.add_link(LinkConfig::new(100e6, Time::from_millis(1), 100));
        let stats: FlowHandle = Rc::new(RefCell::new(FlowStats::default()));
        let receiver =
            TcpReceiver::new(TcpConfig::default(), Route::direct(rev), Rc::clone(&stats));
        let rid = sim.add_endpoint(Box::new(receiver));
        let acks = Rc::new(RefCell::new(Vec::new()));
        let injector = Injector {
            script,
            next: 0,
            route: Route::direct(fwd),
            dst: rid,
            acks: Rc::clone(&acks),
        };
        let iid = sim.add_endpoint(Box::new(injector));
        sim.schedule_timer(iid, 0, Time::ZERO);
        sim.run_until(Time::from_secs(2));
        let delivered = stats.borrow().bytes_delivered;
        let acks = acks.borrow().clone();
        (delivered, acks)
    }

    #[test]
    fn in_order_pairs_produce_one_ack_per_two_segments() {
        let (delivered, acks) = run(vec![
            data(0, 0),
            data(1448, 1),
            data(2896, 2),
            data(4344, 3),
        ]);
        assert_eq!(delivered, 4 * 1448);
        assert_eq!(acks.len(), 2, "delayed ACKs: every second segment");
        assert_eq!(acks[0].ack, 2896);
        assert_eq!(acks[1].ack, 5792);
        // The delayed ACK echoes the FIRST segment of its batch.
        assert_eq!(acks[0].echo, Time::from_millis(0));
        assert_eq!(acks[1].echo, Time::from_millis(2));
    }

    #[test]
    fn lone_segment_is_acked_by_the_delack_timer() {
        let (delivered, acks) = run(vec![data(0, 0)]);
        assert_eq!(delivered, 1448);
        assert_eq!(acks.len(), 1, "the 100 ms cap fires");
        assert_eq!(acks[0].ack, 1448);
    }

    #[test]
    fn out_of_order_segment_triggers_immediate_dup_ack() {
        // 0 arrives, then 2896 (hole at 1448): a dup ACK of 1448 must be
        // emitted immediately for each out-of-order arrival.
        let (delivered, acks) = run(vec![
            data(0, 0),
            data(2896, 1),
            data(4344, 2),
            data(5792, 3),
        ]);
        assert_eq!(delivered, 1448);
        // First in-order segment: delack pending... then three ooo arrivals
        // each force an immediate ACK of rcv_nxt = 1448.
        let dup_acks: Vec<_> = acks.iter().filter(|a| a.ack == 1448).collect();
        assert!(dup_acks.len() >= 3, "three duplicate ACKs: {acks:?}");
        assert!(dup_acks.iter().all(|a| a.retx), "dup ACKs are Karn-flagged");
    }

    #[test]
    fn filling_the_hole_jumps_the_cumulative_ack() {
        let (delivered, acks) = run(vec![
            data(0, 0),
            data(2896, 1),
            data(4344, 2),
            data(1448, 3), // fills the hole
        ]);
        assert_eq!(delivered, 5792);
        let last = acks.last().expect("ACK after fill");
        assert_eq!(last.ack, 5792, "cumulative jump over the buffer");
    }

    #[test]
    fn old_data_is_reacked_immediately() {
        let (delivered, acks) = run(vec![
            data(0, 0),
            data(1448, 1),
            data(0, 2), // spurious go-back-N resend
        ]);
        assert_eq!(delivered, 2896);
        let last = acks.last().unwrap();
        assert_eq!(last.ack, 2896);
        assert!(last.retx, "re-ACK of old data never feeds RTT sampling");
    }

    #[test]
    fn duplicate_ooo_segment_is_idempotent() {
        let (delivered, _) = run(vec![
            data(0, 0),
            data(2896, 1),
            data(2896, 2), // same ooo segment twice
            data(1448, 3),
        ]);
        assert_eq!(delivered, 3 * 1448);
    }
}
