//! Jacobson/Karels retransmission-timeout estimation (RFC 2988 flavor).

use tputpred_netsim::Time;

/// Smoothed RTT / RTT-variance estimator producing the retransmission
/// timeout:
///
/// ```text
/// first sample:  SRTT = R,      RTTVAR = R/2
/// afterwards:    RTTVAR = (1−β)·RTTVAR + β·|SRTT − R|     (β = 1/4)
///                SRTT   = (1−α)·SRTT + α·R                (α = 1/8)
/// RTO = clamp(SRTT + 4·RTTVAR, min_rto, max_rto)
/// ```
///
/// Retransmitted segments never produce samples (Karn's rule — the caller
/// enforces it); timeouts back off exponentially via [`RtoEstimator::backoff`]
/// and the backoff clears on the next valid sample.
///
/// # Examples
///
/// ```
/// use tputpred_tcp::RtoEstimator;
/// use tputpred_netsim::Time;
///
/// let mut rto = RtoEstimator::new(Time::from_secs(1), Time::from_secs(60));
/// assert_eq!(rto.current(), Time::from_secs(1), "pre-sample default");
/// rto.sample(Time::from_millis(100));
/// // SRTT = 100 ms, RTTVAR = 50 ms → raw RTO = 300 ms, floored to 1 s.
/// assert_eq!(rto.current(), Time::from_secs(1));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RtoEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    min_rto: f64,
    max_rto: f64,
    backoff: u32,
}

impl RtoEstimator {
    const ALPHA: f64 = 0.125;
    const BETA: f64 = 0.25;

    /// Creates an estimator with the given RTO clamp. Before any sample
    /// the RTO is `min_rto` — the paper-era conservative default.
    pub fn new(min_rto: Time, max_rto: Time) -> Self {
        RtoEstimator {
            srtt: None,
            rttvar: 0.0,
            min_rto: min_rto.as_secs_f64(),
            max_rto: max_rto.as_secs_f64(),
            backoff: 0,
        }
    }

    /// Feeds one RTT measurement (from a never-retransmitted segment) and
    /// clears any timeout backoff.
    pub fn sample(&mut self, rtt: Time) {
        let r = rtt.as_secs_f64();
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar = (1.0 - Self::BETA) * self.rttvar + Self::BETA * (srtt - r).abs();
                self.srtt = Some((1.0 - Self::ALPHA) * srtt + Self::ALPHA * r);
            }
        }
        self.backoff = 0;
    }

    /// The smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<Time> {
        self.srtt.map(Time::from_secs_f64)
    }

    /// Current RTO including exponential backoff.
    pub fn current(&self) -> Time {
        let base = match self.srtt {
            None => self.min_rto,
            Some(srtt) => (srtt + 4.0 * self.rttvar).clamp(self.min_rto, self.max_rto),
        };
        let backed = base * f64::from(1u32 << self.backoff.min(6));
        Time::from_secs_f64(backed.min(self.max_rto))
    }

    /// Doubles the RTO after a timeout (capped at `max_rto`).
    pub fn backoff(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RtoEstimator {
        RtoEstimator::new(Time::from_millis(200), Time::from_secs(60))
    }

    #[test]
    fn first_sample_initialises_srtt_and_var() {
        let mut r = est();
        r.sample(Time::from_millis(400));
        assert_eq!(r.srtt(), Some(Time::from_millis(400)));
        // RTO = 400 + 4·200 = 1200 ms.
        assert_eq!(r.current(), Time::from_millis(1200));
    }

    #[test]
    fn steady_samples_shrink_variance() {
        let mut r = est();
        for _ in 0..100 {
            r.sample(Time::from_millis(400));
        }
        // Constant RTT → RTTVAR → 0 → RTO → max(SRTT, min_rto).
        let rto = r.current().as_millis_f64();
        assert!((400.0..450.0).contains(&rto), "rto {rto} ms");
    }

    #[test]
    fn min_rto_floor_applies() {
        let mut r = RtoEstimator::new(Time::from_secs(1), Time::from_secs(60));
        for _ in 0..50 {
            r.sample(Time::from_millis(10));
        }
        assert_eq!(r.current(), Time::from_secs(1));
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut r = est();
        r.sample(Time::from_millis(400));
        let base = r.current();
        r.backoff();
        assert_eq!(r.current().as_nanos(), base.as_nanos() * 2);
        r.backoff();
        assert_eq!(r.current().as_nanos(), base.as_nanos() * 4);
        r.sample(Time::from_millis(400));
        assert!(r.current() < base + Time::from_millis(1));
    }

    #[test]
    fn max_rto_caps_backoff() {
        let mut r = est();
        r.sample(Time::from_secs(2));
        for _ in 0..20 {
            r.backoff();
        }
        assert!(r.current() <= Time::from_secs(60));
    }

    #[test]
    fn variance_responds_to_jitter() {
        let mut stable = est();
        let mut jittery = est();
        for i in 0..50 {
            stable.sample(Time::from_millis(100));
            jittery.sample(Time::from_millis(if i % 2 == 0 { 50 } else { 150 }));
        }
        assert!(jittery.current() > stable.current());
    }
}
