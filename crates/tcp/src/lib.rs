//! # tputpred-tcp — packet-level TCP Reno on the simulator
//!
//! A from-scratch TCP Reno implementation over
//! [`tputpred_netsim`]'s event engine, faithful to the mechanisms the
//! PFTK model (and the reproduced paper) reason about:
//!
//! * slow start and congestion avoidance (AIMD), with ACK-clocked growth;
//! * **fast retransmit / fast recovery** on three duplicate ACKs (Reno
//!   window inflation, full deflation on the recovery ACK);
//! * **retransmission timeouts** with Jacobson/Karels estimation
//!   (`RTO = SRTT + 4·RTTVAR`, floored at 1 s as in the paper's
//!   `T̂₀ = max(1 s, 2·SRTT)` era), exponential backoff, and Karn's rule
//!   (no RTT samples from retransmitted segments);
//! * **delayed ACKs** (every second segment, 100 ms cap) — the `b = 2`
//!   of the throughput formulas;
//! * a **maximum window** `W` (the socket buffer IPerf caps): 1 MB for the
//!   paper's congestion-limited transfers, 20 KB for window-limited ones.
//!
//! [`TcpSender`]/[`TcpReceiver`] are endpoints
//! ([`tputpred_netsim::Endpoint`]); a flow is wired up with
//! [`connect`], which returns a shared [`FlowHandle`] for reading progress
//! and congestion statistics during/after the run. Senders model bulk
//! (IPerf-style) transfers: unlimited application data from `start` until
//! `stop`, which is also how persistent *elastic cross traffic* is
//! created (with `stop = Time::MAX`).

pub mod flow;
pub mod receiver;
pub mod rto;
pub mod sender;

pub use flow::{connect, connect_sized, FlowHandle, FlowStats, TcpConfig, TcpFlavor};
pub use receiver::TcpReceiver;
pub use rto::RtoEstimator;
pub use sender::TcpSender;
