//! Flow configuration, shared statistics, and connection wiring.

use crate::receiver::TcpReceiver;
use crate::sender::TcpSender;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;
use tputpred_netsim::{EndpointId, Route, Simulator, Time};
use tputpred_stats::Summary;

/// Loss-recovery flavor of the sender.
///
/// The PFTK model (and the paper's IPerf endpoints) assume **Reno**:
/// fast recovery ends on the first advancing ACK, so a window with
/// several losses usually needs a retransmission timeout. **NewReno**
/// (RFC 2582, contemporary with the paper) stays in fast recovery across
/// *partial* ACKs, retransmitting one hole per RTT — fewer timeouts under
/// bursty loss. The `abl_tcp_flavor` binary measures how much the flavor
/// moves throughput and FB error (§1: prediction depends on "the exact
/// implementation of TCP at the end-hosts").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TcpFlavor {
    /// Plain Reno: exit fast recovery on any advancing ACK.
    #[default]
    Reno,
    /// NewReno: retransmit per partial ACK, exit on the full ACK.
    NewReno,
}

/// TCP flow parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Payload bytes per segment (MSS). 1448 = Ethernet MTU − 52 bytes of
    /// headers, matching the paper's 1500-byte wire packets.
    pub mss: u32,
    /// Header overhead added to every data packet on the wire.
    pub header: u32,
    /// Maximum window in bytes — the socket buffer (`W`): the smaller of
    /// sender/receiver buffers. 1 MB (paper default) or 20 KB
    /// (window-limited experiments).
    pub max_window: u32,
    /// Initial congestion window, in segments.
    pub init_cwnd_segments: u32,
    /// Delayed ACKs: acknowledge every `ack_every` in-order segments
    /// (2 = the `b` of the throughput formulas), with a cap timer.
    pub ack_every: u32,
    /// Delayed-ACK cap: an ACK is sent at most this long after the first
    /// unacknowledged segment.
    pub delack_timeout: Time,
    /// Minimum retransmission timeout (RFC 2988-era 1 s).
    pub min_rto: Time,
    /// Maximum retransmission timeout.
    pub max_rto: Time,
    /// Loss-recovery flavor.
    pub flavor: TcpFlavor,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1448,
            header: 52,
            max_window: 1 << 20,
            init_cwnd_segments: 2,
            ack_every: 2,
            delack_timeout: Time::from_millis(100),
            min_rto: Time::from_secs(1),
            max_rto: Time::from_secs(60),
            flavor: TcpFlavor::Reno,
        }
    }
}

impl TcpConfig {
    /// Wire size of a full data segment.
    pub fn data_packet_size(&self) -> u32 {
        self.mss + self.header
    }

    /// Wire size of a pure ACK.
    pub fn ack_packet_size(&self) -> u32 {
        self.header
    }
}

/// Statistics a flow accumulates, shared between sender, receiver, and the
/// experiment driver.
#[derive(Debug, Default)]
pub struct FlowStats {
    /// In-order bytes delivered to the receiving application.
    pub bytes_delivered: u64,
    /// Data segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Retransmitted segments.
    pub retransmits: u64,
    /// Fast-retransmit events (triple-duplicate loss events).
    pub fast_retransmits: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
    /// RTT samples taken by the sender (seconds).
    pub rtt: Summary,
    /// Congestion-window samples (bytes), taken by the sender whenever
    /// the window changes. Observation-only: nothing in the protocol
    /// reads this back.
    pub cwnd_bytes: Summary,
    /// True once the sender has passed its stop time (timed flows) or
    /// delivered its byte budget (sized flows) and the flight drained.
    pub finished: bool,
    /// When the flow finished, if it has.
    pub finished_at: Option<Time>,
}

impl FlowStats {
    /// Loss events (fast retransmits + timeouts) — the "congestion event"
    /// count of the PFTK model's `p` (§3.3 distinguishes this from the
    /// per-packet loss rate a prober sees).
    pub fn loss_events(&self) -> u64 {
        self.fast_retransmits + self.timeouts
    }

    /// Per-segment retransmission fraction, a proxy for the loss rate the
    /// flow itself experienced.
    pub fn retransmit_rate(&self) -> f64 {
        if self.segments_sent == 0 {
            0.0
        } else {
            self.retransmits as f64 / self.segments_sent as f64
        }
    }

    /// Average delivered throughput (bits/s) between two observation
    /// points, used by drivers sampling `bytes_delivered` around a
    /// measurement window.
    pub fn throughput_bps(delivered_bytes: u64, duration: Time) -> f64 {
        if duration == Time::ZERO {
            0.0
        } else {
            delivered_bytes as f64 * 8.0 / duration.as_secs_f64()
        }
    }
}

/// Shared handle to a flow's statistics.
pub type FlowHandle = Rc<RefCell<FlowStats>>;

/// Creates a bulk TCP flow in `sim`: a [`TcpSender`] transmitting over
/// `fwd_route` and a [`TcpReceiver`] acknowledging over `rev_route`.
///
/// The sender transmits application data from `start` (the connection's
/// slow start begins there) until `stop`, then lets the flight drain.
/// Returns the sender/receiver endpoint ids and the shared statistics
/// handle.
///
/// # Examples
///
/// See the crate-level integration tests: a sender and receiver across a
/// single bottleneck link, with throughput read from the
/// [`FlowHandle`].
pub fn connect(
    sim: &mut Simulator,
    config: TcpConfig,
    fwd_route: Route,
    rev_route: Route,
    start: Time,
    stop: Time,
) -> (EndpointId, EndpointId, FlowHandle) {
    connect_sized(sim, config, fwd_route, rev_route, start, stop, u64::MAX)
}

/// Like [`connect`], but the application transfers exactly `bytes` bytes
/// (e.g. a 64 KB NWS-style probe or a file download). The flow finishes —
/// recording [`FlowStats::finished_at`] — when the last byte is
/// acknowledged, or gives up at `stop`.
pub fn connect_sized(
    sim: &mut Simulator,
    config: TcpConfig,
    fwd_route: Route,
    rev_route: Route,
    start: Time,
    stop: Time,
    bytes: u64,
) -> (EndpointId, EndpointId, FlowHandle) {
    let stats: FlowHandle = Rc::new(RefCell::new(FlowStats::default()));
    let receiver = TcpReceiver::new(config, rev_route, Rc::clone(&stats));
    let receiver_id = sim.add_endpoint(Box::new(receiver));
    let sender = TcpSender::with_byte_limit(
        config,
        fwd_route,
        receiver_id,
        stop,
        bytes,
        Rc::clone(&stats),
    );
    let sender_id = sim.add_endpoint(Box::new(sender));
    // The receiver must know where to send ACKs; it learns the sender id
    // from the first data packet's src field, so no back-reference is
    // needed here. Bootstrap the sender.
    sim.schedule_timer(sender_id, crate::sender::TOKEN_START, start);
    (sender_id, receiver_id, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_setup() {
        let c = TcpConfig::default();
        assert_eq!(c.data_packet_size(), 1500);
        assert_eq!(c.max_window, 1 << 20);
        assert_eq!(c.ack_every, 2);
        assert_eq!(c.min_rto, Time::from_secs(1));
    }

    #[test]
    fn throughput_helper() {
        let bps = FlowStats::throughput_bps(1_250_000, Time::from_secs(1));
        assert_eq!(bps, 10e6);
        assert_eq!(FlowStats::throughput_bps(100, Time::ZERO), 0.0);
    }

    #[test]
    fn loss_events_sum_fast_retx_and_timeouts() {
        let s = FlowStats {
            fast_retransmits: 3,
            timeouts: 2,
            ..Default::default()
        };
        assert_eq!(s.loss_events(), 5);
    }

    #[test]
    fn retransmit_rate_handles_empty_flow() {
        assert_eq!(FlowStats::default().retransmit_rate(), 0.0);
        let s = FlowStats {
            segments_sent: 100,
            retransmits: 5,
            ..Default::default()
        };
        assert!((s.retransmit_rate() - 0.05).abs() < 1e-12);
    }
}
