//! The timer wheel is order-equivalent to the binary heap it replaced:
//! for any schedule of pushes and pops — same-timestamp FIFO ties,
//! in-window pushes, and far-horizon spills included — the wheel pops
//! entries in exactly the heap's `(at, seq)` order (DESIGN.md §14).

use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tputpred_netsim::wheel::{TimerEntry, TimerWheel, SLOTS, SLOT_NS};
use tputpred_netsim::{EndpointId, Time};

/// The wheel horizon in nanoseconds: entries at or past `now + HORIZON_NS`
/// take the overflow path.
const HORIZON_NS: u64 = SLOT_NS * SLOTS as u64;

/// Both schedules under test, driven in lockstep.
struct Pair {
    wheel: TimerWheel,
    heap: BinaryHeap<Reverse<(Time, u64, u64)>>,
    now: Time,
    seq: u64,
}

impl Pair {
    fn new() -> Self {
        Pair {
            wheel: TimerWheel::new(),
            heap: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
        }
    }

    fn push_at(&mut self, at: Time) {
        let seq = self.seq;
        self.seq += 1;
        self.wheel.push(
            TimerEntry {
                at,
                seq,
                endpoint: EndpointId(0),
                token: seq,
            },
            self.now,
        );
        self.heap.push(Reverse((at, seq, seq)));
    }

    /// Pops one entry from both and asserts they agree; advances `now`
    /// to the popped timestamp (the engine's clock discipline).
    fn pop_and_check(&mut self) -> Result<(), TestCaseError> {
        let got = self.wheel.pop(self.now).map(|e| (e.at, e.seq, e.token));
        let want = self.heap.pop().map(|Reverse(k)| k);
        prop_assert_eq!(got, want, "wheel diverged from reference heap");
        if let Some((at, _, _)) = want {
            self.now = self.now.max(at);
        }
        Ok(())
    }

    fn drain_and_check(&mut self) -> Result<(), TestCaseError> {
        while !self.heap.is_empty() || !self.wheel.is_empty() {
            prop_assert_eq!(self.wheel.len(), self.heap.len());
            self.pop_and_check()?;
        }
        prop_assert!(self.wheel.pop(self.now).is_none());
        Ok(())
    }
}

/// Maps one opcode of raw randomness to a push delta. Mixes exact ties
/// (delta 0), same-slot, in-horizon, boundary-adjacent, and far-spill
/// timestamps.
fn delta_ns(kind: u8, raw: u64) -> u64 {
    match kind % 6 {
        0 => 0,                                    // exact tie with `now`
        1 => raw % 64,                             // sub-slot jitter
        2 => raw % SLOT_NS,                        // same or adjacent slot
        3 => raw % HORIZON_NS,                     // anywhere in the wheel window
        4 => HORIZON_NS - 1 + (raw % 3),           // straddles the horizon edge
        _ => HORIZON_NS + raw % (10 * HORIZON_NS), // deep overflow
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wheel_matches_reference_heap_pop_order(
        ops in prop::collection::vec((0u8..8, 0u64..u64::MAX / 2), 1..200),
    ) {
        let mut pair = Pair::new();
        for &(kind, raw) in &ops {
            // Opcodes 6..8: pop (so pushes dominate ~3:1); otherwise push.
            if kind >= 6 {
                pair.pop_and_check()?;
            } else {
                let at = pair.now + Time::from_nanos(delta_ns(kind, raw));
                pair.push_at(at);
            }
        }
        pair.drain_and_check()?;
    }

    #[test]
    fn repeated_timestamps_pop_in_scheduling_order(
        deltas in prop::collection::vec(0u64..4, 2..64),
    ) {
        // Heavily tied timestamps: deltas of 0 keep piling entries onto
        // the same instant, where only the seq tie-break orders them.
        let mut pair = Pair::new();
        let mut at = Time::ZERO;
        for &d in &deltas {
            at += Time::from_nanos(d * SLOT_NS / 2);
            pair.push_at(at);
        }
        pair.drain_and_check()?;
    }
}

#[test]
fn overflow_boundary_is_exact() {
    // Deterministic horizon-edge sweep: entries one slot below, exactly
    // at, and one past the overflow boundary, pushed in reverse time
    // order, interleaved with pops that advance the wheel.
    let mut pair = Pair::new();
    let edges = [
        HORIZON_NS - SLOT_NS,
        HORIZON_NS - 1,
        HORIZON_NS,
        HORIZON_NS + 1,
        HORIZON_NS + SLOT_NS,
        2 * HORIZON_NS,
    ];
    for &e in edges.iter().rev() {
        pair.push_at(Time::from_nanos(e));
    }
    // Pop two (advancing now near the horizon), then push more entries
    // relative to the new now so the migrated window is exercised.
    pair.pop_and_check().unwrap();
    pair.pop_and_check().unwrap();
    for &e in &edges {
        pair.push_at(pair.now + Time::from_nanos(e));
    }
    pair.drain_and_check().unwrap();
    let c = pair.wheel.counters();
    assert!(c.overflow_scheduled > 0, "edge sweep must spill: {c:?}");
    assert_eq!(c.overflow_migrated, c.overflow_scheduled);
}
