//! Property-based invariants of the simulation engine: conservation,
//! ordering, and capacity laws that must hold for any traffic pattern.

use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use tputpred_netsim::link::LinkConfig;
use tputpred_netsim::sources::{CbrSource, ParetoOnOffSource, PoissonSource, Sink, SourceConfig};
use tputpred_netsim::{Ctx, Endpoint, Packet, Payload, RateSchedule, Route, Simulator, Time};

/// Runs `secs` of a single-link world with the given source mix; returns
/// (offered, forwarded, dropped, queued, delivered, busy_secs, capacity).
fn run_world(
    seed: u64,
    rate_mbps: f64,
    buffer: u32,
    load_fraction: f64,
    kind: u8,
    secs: u64,
) -> (u64, u64, u64, u64, u64, f64, f64) {
    let capacity = rate_mbps * 1e6;
    let mut sim = Simulator::new(seed);
    let link = sim.add_link(LinkConfig::new(capacity, Time::from_millis(10), buffer));
    let (sink, rx) = Sink::new();
    let sink_id = sim.add_endpoint(Box::new(sink));
    let cfg = SourceConfig {
        route: Route::direct(link),
        dst: sink_id,
        packet_size: 1000,
        base_rate_bps: capacity * load_fraction,
        schedule: RateSchedule::constant(1.0),
        stop: Time::from_secs(secs),
    };
    let src: Box<dyn Endpoint> = match kind % 3 {
        0 => Box::new(CbrSource::new(cfg).0),
        1 => Box::new(PoissonSource::new(cfg).0),
        _ => Box::new(ParetoOnOffSource::new(cfg, 0.5, 1.7, 0.3).0),
    };
    let src_id = sim.add_endpoint(src);
    sim.schedule_timer(src_id, 0, Time::ZERO);
    sim.run_until(Time::from_secs(secs));
    // Drain what is still queued/propagating.
    sim.run_to_quiescence();
    let stats = *sim.link(link).stats();
    let queued = sim.link(link).queue_len() as u64;
    let delivered = rx.borrow().packets;
    (
        stats.offered,
        stats.packets_out,
        stats.drops,
        queued,
        delivered,
        stats.busy.as_secs_f64(),
        capacity,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn packets_are_conserved(
        seed in 0u64..1000,
        rate in 1.0f64..50.0,
        buffer in 2u32..200,
        load in 0.1f64..2.0,
        kind in 0u8..3,
    ) {
        let (offered, forwarded, dropped, queued, delivered, _, _) =
            run_world(seed, rate, buffer, load, kind, 5);
        // Conservation at the link...
        prop_assert_eq!(offered, forwarded + dropped + queued);
        // ...and after quiescence nothing is left in the queue and every
        // forwarded packet reached the sink.
        prop_assert_eq!(queued, 0);
        prop_assert_eq!(forwarded, delivered);
    }

    #[test]
    fn forwarded_traffic_never_exceeds_capacity(
        seed in 0u64..1000,
        rate in 1.0f64..50.0,
        buffer in 2u32..200,
        load in 0.5f64..3.0,
        kind in 0u8..3,
    ) {
        let secs = 5;
        let (_, forwarded, _, _, _, busy, capacity) =
            run_world(seed, rate, buffer, load, kind, secs);
        let bits = forwarded as f64 * 1000.0 * 8.0;
        // After `secs` the source stops but the queue drains: allow for a
        // full buffer's worth of serialization beyond the deadline.
        let drain = buffer as f64 * 1000.0 * 8.0 / capacity + 0.1;
        prop_assert!(bits <= capacity * (secs as f64 + drain) + 8000.0,
            "forwarded {bits} bits over {secs}s on a {capacity} link");
        prop_assert!(busy <= secs as f64 + drain, "busy {busy}s in {secs}s");
    }

    #[test]
    fn overload_always_drops_and_underload_never_does(
        seed in 0u64..1000,
        rate in 1.0f64..20.0,
        buffer in 2u32..64,
    ) {
        // CBR at 150%: must drop. CBR at 50%: must not.
        let (_, _, dropped_over, _, _, _, _) = run_world(seed, rate, buffer, 1.5, 0, 5);
        prop_assert!(dropped_over > 0, "150% CBR load must overflow");
        let (_, _, dropped_under, _, _, _, _) = run_world(seed, rate, buffer, 0.5, 0, 5);
        prop_assert_eq!(dropped_under, 0, "50% CBR load never overflows");
    }

    #[test]
    fn fifo_links_never_reorder(
        seed in 0u64..1000,
        burst in 2u32..40,
        buffer in 50u32..100,
    ) {
        // A burst of sequence-stamped probes through one link arrives in
        // order.
        struct Burst {
            route: Route,
            dst: tputpred_netsim::EndpointId,
            n: u32,
        }
        impl Endpoint for Burst {
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
                for seq in 0..self.n {
                    let meta = tputpred_netsim::ProbeMeta {
                        seq: seq as u64,
                        stream: 0,
                        sent_at: ctx.now,
                        is_reply: false,
                    };
                    ctx.send(self.route, self.dst, 500, Payload::Probe(meta));
                }
            }
        }
        struct OrderCheck {
            seen: Rc<RefCell<Vec<u64>>>,
        }
        impl Endpoint for OrderCheck {
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, p: Packet) {
                if let Payload::Probe(m) = p.payload {
                    self.seen.borrow_mut().push(m.seq);
                }
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: u64) {}
        }
        let mut sim = Simulator::new(seed);
        let link = sim.add_link(LinkConfig::new(5e6, Time::from_millis(7), buffer));
        let seen = Rc::new(RefCell::new(Vec::new()));
        let dst = sim.add_endpoint(Box::new(OrderCheck { seen: Rc::clone(&seen) }));
        let src = sim.add_endpoint(Box::new(Burst {
            route: Route::direct(link),
            dst,
            n: burst,
        }));
        sim.schedule_timer(src, 0, Time::ZERO);
        sim.run_to_quiescence();
        let seen = seen.borrow();
        prop_assert!(!seen.is_empty());
        prop_assert!(seen.windows(2).all(|w| w[0] < w[1]), "reordered: {seen:?}");
    }

    #[test]
    fn simulation_replays_bit_identically(
        seed in 0u64..1000,
        rate in 1.0f64..20.0,
        load in 0.3f64..1.5,
        kind in 0u8..3,
    ) {
        let a = run_world(seed, rate, 32, load, kind, 3);
        let b = run_world(seed, rate, 32, load, kind, 3);
        prop_assert_eq!(a, b);
    }
}
