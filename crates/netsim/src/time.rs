//! Simulated time: a nanosecond-resolution monotonic clock.
//!
//! Integer nanoseconds (not `f64` seconds) so that event ordering is exact
//! and simulations replay bit-identically across platforms. A `u64`
//! nanosecond clock runs for ~584 years of simulated time — the paper's
//! longest traces are 6 hours.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant (or span) of simulated time, in nanoseconds since the start
/// of the simulation.
///
/// `Time` is used for both instants and durations; the arithmetic provided
/// is the small set a simulator needs (instant + span, instant − instant).
///
/// # Examples
///
/// ```
/// use tputpred_netsim::Time;
/// let t = Time::from_secs_f64(1.5) + Time::from_millis(500);
/// assert_eq!(t.as_secs_f64(), 2.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(u64);

impl Time {
    /// Time zero: the start of the simulation.
    pub const ZERO: Time = Time(0);

    /// The far future; useful as an "infinite" deadline.
    pub const MAX: Time = Time(u64::MAX);

    /// From raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// From whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// From whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// From fractional seconds, rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics (debug) on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s.is_finite() && s >= 0.0, "invalid time {s}");
        Time((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction — spans never go negative.
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Time) -> Option<Time> {
        self.0.checked_sub(rhs.0).map(Time)
    }

    /// The serialization time of `bytes` at `rate_bps` bits per second.
    ///
    /// # Panics
    ///
    /// Panics (debug) on a non-positive rate.
    pub fn tx_time(bytes: u32, rate_bps: f64) -> Time {
        debug_assert!(rate_bps > 0.0, "non-positive link rate");
        Time::from_secs_f64(bytes as f64 * 8.0 / rate_bps)
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        // lint:allow(no-unwrap): u64-ns overflow is ~585 years of simulated time — a logic error, not a degradable measurement fault
        Time(self.0.checked_add(rhs.0).expect("simulated time overflow"))
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    /// # Panics
    ///
    /// Panics on underflow — subtracting a later instant from an earlier
    /// one is always a logic error in a monotonic simulation.
    fn sub(self, rhs: Time) -> Time {
        // lint:allow(no-unwrap): documented contract — later-minus-earlier underflow is a logic error in a monotonic simulation
        Time(self.0.checked_sub(rhs.0).expect("simulated time underflow"))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_secs(2), Time::from_millis(2000));
        assert_eq!(Time::from_millis(3), Time::from_micros(3000));
        assert_eq!(Time::from_micros(5), Time::from_nanos(5000));
        assert_eq!(Time::from_secs_f64(1.25), Time::from_millis(1250));
    }

    #[test]
    fn arithmetic_works() {
        let a = Time::from_secs(1);
        let b = Time::from_millis(250);
        assert_eq!((a + b).as_secs_f64(), 1.25);
        assert_eq!((a - b).as_millis_f64(), 750.0);
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.checked_sub(b), Some(Time::from_millis(750)));
        assert_eq!(b.checked_sub(a), None);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Time::from_secs(1) - Time::from_secs(2);
    }

    #[test]
    fn tx_time_matches_hand_computation() {
        // 1500 bytes at 10 Mbps = 1.2 ms.
        let t = Time::tx_time(1500, 10e6);
        assert_eq!(t, Time::from_micros(1200));
    }

    #[test]
    fn ordering_is_total() {
        let mut ts = [Time::from_secs(3), Time::ZERO, Time::from_millis(1)];
        ts.sort();
        assert_eq!(ts[0], Time::ZERO);
        assert_eq!(ts[2], Time::from_secs(3));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(Time::from_millis(1500).to_string(), "1.500000s");
    }
}
