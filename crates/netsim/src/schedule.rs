//! Piecewise-constant load modulation: the time-series pathologies of
//! §5.2, injected by construction.
//!
//! A [`RateSchedule`] multiplies a cross-traffic source's base rate by a
//! time-varying factor composed of:
//!
//! * a **base level** per segment — changing at *level-shift* instants
//!   (the paper's route/load changes that HB predictors must restart on);
//! * transient **bursts** — short intervals of extreme load (producing
//!   the *outlier* throughput measurements the ψ-heuristic discards).
//!
//! The schedule is immutable once built; generators sample it at each
//! packet emission, so the modulation resolution is the packet scale.

use crate::time::Time;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// One constant-level segment of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Segment {
    /// Segment start (segments are sorted; the first starts at 0).
    start: Time,
    /// Rate multiplier during the segment.
    level: f64,
}

/// A transient burst on top of the base level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Burst {
    start: Time,
    end: Time,
    /// Multiplier applied *instead of* the base level while active.
    level: f64,
}

/// A piecewise-constant rate-multiplier over simulated time.
///
/// # Examples
///
/// ```
/// use tputpred_netsim::{RateSchedule, Time};
/// let s = RateSchedule::constant(1.0)
///     .with_shift(Time::from_secs(100), 2.0)
///     .with_burst(Time::from_secs(50), Time::from_secs(52), 5.0);
/// assert_eq!(s.multiplier_at(Time::from_secs(10)), 1.0);
/// assert_eq!(s.multiplier_at(Time::from_secs(51)), 5.0);
/// assert_eq!(s.multiplier_at(Time::from_secs(200)), 2.0);
/// ```
/// Single-entry memo for [`RateSchedule::multiplier_at_cached`]: the
/// half-open nanosecond window `[from_ns, until_ns)` a previous lookup
/// resolved, and the constant multiplier across it. Starts empty
/// (`from_ns > until_ns`, so the first lookup always computes).
#[derive(Debug, Clone, Copy)]
pub struct ScheduleCursor {
    from_ns: u64,
    until_ns: u64,
    level: f64,
}

impl ScheduleCursor {
    /// The empty cursor (first lookup computes).
    pub const EMPTY: ScheduleCursor = ScheduleCursor {
        from_ns: 1,
        until_ns: 0,
        level: 0.0,
    };
}

#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RateSchedule {
    segments: Vec<Segment>,
    /// Sorted by start and pairwise disjoint: [`RateSchedule::with_burst`]
    /// carves each new burst's span out of whatever it overlaps
    /// (latest-added wins), so lookup can binary-search instead of
    /// scanning — schedules are sampled at every packet emission.
    bursts: Vec<Burst>,
}

impl RateSchedule {
    /// A schedule with a single constant level.
    ///
    /// # Panics
    ///
    /// Panics on a negative level.
    pub fn constant(level: f64) -> Self {
        assert!(level >= 0.0, "negative rate level");
        RateSchedule {
            segments: vec![Segment {
                start: Time::ZERO,
                level,
            }],
            bursts: Vec::new(),
        }
    }

    /// Adds a level shift: from `at` onward the base multiplier is
    /// `level`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is not after the last shift, or `level` is negative.
    pub fn with_shift(mut self, at: Time, level: f64) -> Self {
        assert!(level >= 0.0, "negative rate level");
        // lint:allow(no-unwrap): builder invariant — the constructor seeds the base segment; runs at config time, not during measurement
        let last = self.segments.last().expect("schedule has a base segment");
        assert!(at > last.start, "shifts must be strictly increasing");
        self.segments.push(Segment { start: at, level });
        self
    }

    /// Adds a transient burst overriding the base level on `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics unless `start < end` and `level ≥ 0`.
    pub fn with_burst(mut self, start: Time, end: Time, level: f64) -> Self {
        assert!(start < end, "empty burst");
        assert!(level >= 0.0, "negative burst level");
        // Keep the interval set sorted and disjoint: trim or split any
        // existing burst the new span overlaps (so the newest burst wins
        // on the overlap, exactly the old last-match-scanning-backwards
        // semantics), then insert the new one in start order.
        let mut kept: Vec<Burst> = Vec::with_capacity(self.bursts.len() + 2);
        for b in self.bursts.drain(..) {
            if b.end <= start || b.start >= end {
                kept.push(b);
                continue;
            }
            if b.start < start {
                kept.push(Burst {
                    start: b.start,
                    end: start,
                    level: b.level,
                });
            }
            if b.end > end {
                kept.push(Burst {
                    start: end,
                    end: b.end,
                    level: b.level,
                });
            }
        }
        kept.push(Burst { start, end, level });
        kept.sort_by_key(|b| b.start);
        self.bursts = kept;
        self
    }

    /// The multiplier in effect at time `t`. Bursts take precedence over
    /// the base level; overlapping bursts resolve to the latest-added.
    pub fn multiplier_at(&self, t: Time) -> f64 {
        self.window_at(t).0
    }

    /// Like [`RateSchedule::multiplier_at`], but memoized through a
    /// caller-owned [`ScheduleCursor`]: a lookup inside the cursor's
    /// cached constant window returns immediately, skipping both binary
    /// searches. Pure memoization — every call returns exactly what
    /// `multiplier_at` would (generators query once per emitted packet,
    /// almost always inside the same window as the previous packet).
    // lint:hot-path
    pub fn multiplier_at_cached(&self, t: Time, cursor: &mut ScheduleCursor) -> f64 {
        let t_ns = t.as_nanos();
        if cursor.from_ns <= t_ns && t_ns < cursor.until_ns {
            return cursor.level;
        }
        let (level, from_ns, until_ns) = self.window_at(t);
        *cursor = ScheduleCursor {
            from_ns,
            until_ns,
            level,
        };
        level
    }

    /// The multiplier at `t` plus the maximal half-open window
    /// `[from, until)` of nanosecond instants around `t` over which it
    /// is constant (`u64::MAX` when unbounded above).
    fn window_at(&self, t: Time) -> (f64, u64, u64) {
        // Bursts are sorted and disjoint (`with_burst` carves overlaps),
        // so the only candidate is the last interval starting ≤ t.
        let bidx = self.bursts.partition_point(|b| b.start <= t);
        if bidx > 0 {
            let b = self.bursts[bidx - 1];
            if t < b.end {
                // Disjointness means no other burst starts before b.end,
                // so the whole burst span is one constant window.
                return (b.level, b.start.as_nanos(), b.end.as_nanos());
            }
        }
        // Segments are sorted by construction; find the last whose start
        // is ≤ t. The base level holds from the later of the segment
        // start and the end of the burst just passed, until the next
        // segment shift or the next burst begins.
        let sidx = self
            .segments
            .partition_point(|s| s.start <= t)
            .saturating_sub(1);
        let seg = self.segments[sidx];
        let mut from_ns = seg.start.as_nanos();
        if bidx > 0 {
            from_ns = from_ns.max(self.bursts[bidx - 1].end.as_nanos());
        }
        let mut until_ns = self
            .segments
            .get(sidx + 1)
            .map_or(u64::MAX, |s| s.start.as_nanos());
        if let Some(next) = self.bursts.get(bidx) {
            until_ns = until_ns.min(next.start.as_nanos());
        }
        (seg.level, from_ns, until_ns)
    }

    /// Number of level shifts (segments beyond the base one).
    pub fn shift_count(&self) -> usize {
        self.segments.len().saturating_sub(1)
    }

    /// Number of disjoint burst intervals. Overlapping `with_burst`
    /// calls may split earlier bursts, so this can exceed the number of
    /// calls.
    pub fn burst_count(&self) -> usize {
        self.bursts.len()
    }

    /// Times at which the base level shifts.
    pub fn shift_times(&self) -> impl Iterator<Item = Time> + '_ {
        self.segments.iter().skip(1).map(|s| s.start)
    }

    /// Generates a random schedule for a trace of duration `horizon`:
    ///
    /// * level shifts arrive as a Poisson process of rate
    ///   `shifts_per_trace / horizon`, each drawing a new level uniformly
    ///   in `level_range`;
    /// * bursts likewise with `bursts_per_trace`, lasting `burst_len`
    ///   each, at a level uniform in `burst_range`.
    ///
    /// Deterministic given the RNG state.
    #[allow(clippy::too_many_arguments)]
    pub fn random<R: Rng>(
        rng: &mut R,
        horizon: Time,
        shifts_per_trace: f64,
        level_range: (f64, f64),
        bursts_per_trace: f64,
        burst_len: Time,
        burst_range: (f64, f64),
    ) -> Self {
        let base = rng.random_range(level_range.0..=level_range.1);
        let mut schedule = RateSchedule::constant(base);
        if shifts_per_trace > 0.0 {
            let mean_gap = horizon.as_secs_f64() / shifts_per_trace;
            let mut t = crate::random::exponential(rng, mean_gap);
            while t < horizon.as_secs_f64() {
                let level = rng.random_range(level_range.0..=level_range.1);
                schedule = schedule.with_shift(Time::from_secs_f64(t), level);
                t += crate::random::exponential(rng, mean_gap);
            }
        }
        if bursts_per_trace > 0.0 {
            let mean_gap = horizon.as_secs_f64() / bursts_per_trace;
            let mut t = crate::random::exponential(rng, mean_gap);
            while t < horizon.as_secs_f64() {
                let level = rng.random_range(burst_range.0..=burst_range.1);
                let start = Time::from_secs_f64(t);
                schedule = schedule.with_burst(start, start + burst_len, level);
                t += burst_len.as_secs_f64() + crate::random::exponential(rng, mean_gap);
            }
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_schedule_is_flat() {
        let s = RateSchedule::constant(0.5);
        for secs in [0, 1, 100, 10_000] {
            assert_eq!(s.multiplier_at(Time::from_secs(secs)), 0.5);
        }
        assert_eq!(s.shift_count(), 0);
    }

    #[test]
    fn shifts_change_the_base_level() {
        let s = RateSchedule::constant(1.0)
            .with_shift(Time::from_secs(10), 2.0)
            .with_shift(Time::from_secs(20), 0.25);
        assert_eq!(s.multiplier_at(Time::from_secs(9)), 1.0);
        assert_eq!(s.multiplier_at(Time::from_secs(10)), 2.0);
        assert_eq!(s.multiplier_at(Time::from_secs(19)), 2.0);
        assert_eq!(s.multiplier_at(Time::from_secs(25)), 0.25);
        assert_eq!(s.shift_count(), 2);
    }

    #[test]
    fn bursts_override_and_expire() {
        let s = RateSchedule::constant(1.0).with_burst(Time::from_secs(5), Time::from_secs(6), 9.0);
        assert_eq!(s.multiplier_at(Time::from_millis(5500)), 9.0);
        assert_eq!(s.multiplier_at(Time::from_secs(6)), 1.0, "end-exclusive");
        assert_eq!(s.multiplier_at(Time::from_secs(4)), 1.0);
    }

    #[test]
    fn burst_inside_shifted_region_still_wins() {
        let s = RateSchedule::constant(1.0)
            .with_shift(Time::from_secs(10), 3.0)
            .with_burst(Time::from_secs(15), Time::from_secs(16), 0.0);
        assert_eq!(s.multiplier_at(Time::from_millis(15_500)), 0.0);
        assert_eq!(s.multiplier_at(Time::from_secs(17)), 3.0);
    }

    #[test]
    fn overlapping_bursts_resolve_to_latest_added() {
        // New burst fully inside an old one: splits it.
        let s = RateSchedule::constant(1.0)
            .with_burst(Time::from_secs(10), Time::from_secs(20), 2.0)
            .with_burst(Time::from_secs(13), Time::from_secs(15), 7.0);
        assert_eq!(s.multiplier_at(Time::from_secs(11)), 2.0);
        assert_eq!(s.multiplier_at(Time::from_secs(14)), 7.0);
        assert_eq!(s.multiplier_at(Time::from_secs(17)), 2.0);
        assert_eq!(s.burst_count(), 3, "the old burst split around the new");

        // New burst covering an old one entirely: replaces it.
        let s = RateSchedule::constant(1.0)
            .with_burst(Time::from_secs(13), Time::from_secs(15), 7.0)
            .with_burst(Time::from_secs(10), Time::from_secs(20), 2.0);
        for secs in 10..20 {
            assert_eq!(s.multiplier_at(Time::from_secs(secs)), 2.0);
        }
        assert_eq!(s.burst_count(), 1);

        // Partial overlap on each side: old bursts are trimmed.
        let s = RateSchedule::constant(1.0)
            .with_burst(Time::from_secs(0), Time::from_secs(10), 3.0)
            .with_burst(Time::from_secs(20), Time::from_secs(30), 4.0)
            .with_burst(Time::from_secs(5), Time::from_secs(25), 9.0);
        assert_eq!(s.multiplier_at(Time::from_secs(4)), 3.0);
        assert_eq!(s.multiplier_at(Time::from_secs(5)), 9.0);
        assert_eq!(s.multiplier_at(Time::from_secs(24)), 9.0);
        assert_eq!(s.multiplier_at(Time::from_secs(25)), 4.0);
        assert_eq!(s.multiplier_at(Time::from_secs(30)), 1.0);
    }

    #[test]
    fn binary_search_lookup_matches_brute_force_reference() {
        // Pin the sorted/disjoint representation against a reference
        // that replays the with_burst call sequence and scans it
        // backwards (the latest-added-wins contract, stated directly).
        let calls: [(u64, u64, f64); 6] = [
            (100, 200, 2.0),
            (150, 160, 5.0),
            (90, 120, 3.0),
            (500, 700, 0.5),
            (650, 800, 6.0),
            (10, 900, 1.5), // swallows everything before it
        ];
        let mut s = RateSchedule::constant(1.0).with_shift(Time::from_secs(300), 2.5);
        for &(a, b, lvl) in &calls {
            s = s.with_burst(Time::from_secs(a), Time::from_secs(b), lvl);
        }
        let reference = |t: Time| -> f64 {
            for &(a, b, lvl) in calls.iter().rev() {
                if t >= Time::from_secs(a) && t < Time::from_secs(b) {
                    return lvl;
                }
            }
            if t >= Time::from_secs(300) {
                2.5
            } else {
                1.0
            }
        };
        for ms in (0..1_000_000).step_by(997) {
            let t = Time::from_millis(ms);
            assert_eq!(s.multiplier_at(t), reference(t), "at {ms} ms");
        }
    }

    #[test]
    fn cached_lookup_matches_uncached_in_any_query_order() {
        // The cursor memo must be invisible: same answers as
        // multiplier_at at every instant, for monotonic sweeps,
        // backward jumps, and repeated boundary queries, on schedules
        // with carved bursts and shifts (and on a constant one).
        let schedules = [
            RateSchedule::constant(1.0),
            RateSchedule::constant(1.0)
                .with_shift(Time::from_secs(300), 2.5)
                .with_burst(Time::from_secs(100), Time::from_secs(200), 2.0)
                .with_burst(Time::from_secs(150), Time::from_secs(160), 5.0)
                .with_burst(Time::from_secs(90), Time::from_secs(120), 3.0)
                .with_burst(Time::from_secs(500), Time::from_secs(700), 0.5),
        ];
        for s in &schedules {
            let mut cursor = ScheduleCursor::EMPTY;
            // Forward sweep across every boundary.
            for ms in (0..800_000).step_by(491) {
                let t = Time::from_millis(ms);
                assert_eq!(s.multiplier_at_cached(t, &mut cursor), s.multiplier_at(t));
            }
            // Backward and zig-zag queries through the same cursor.
            for ms in [700_000u64, 95_000, 155_000, 155_001, 95_000, 0, 799_999] {
                let t = Time::from_millis(ms);
                assert_eq!(s.multiplier_at_cached(t, &mut cursor), s.multiplier_at(t));
            }
            // Exact boundary instants (start-inclusive, end-exclusive).
            let ns = Time::from_nanos(1);
            for secs in [90u64, 100, 120, 150, 160, 200, 300, 500, 700] {
                for t in [
                    Time::from_secs(secs) - ns,
                    Time::from_secs(secs),
                    Time::from_secs(secs) + ns,
                ] {
                    assert_eq!(s.multiplier_at_cached(t, &mut cursor), s.multiplier_at(t));
                }
            }
        }
    }

    #[test]
    fn burst_boundaries_are_start_inclusive_end_exclusive() {
        // The exact-boundary semantics of `partition_point(|b| b.start
        // <= t)`: at t == start the burst is live (partition_point
        // includes the equal element, so idx-1 is this burst); at
        // t == end the `t < b.end` guard falls through to the base
        // level. One nanosecond to either side flips each case.
        let s = RateSchedule::constant(1.0).with_burst(Time::from_secs(5), Time::from_secs(6), 9.0);
        let ns = Time::from_nanos(1);
        assert_eq!(s.multiplier_at(Time::from_secs(5) - ns), 1.0);
        assert_eq!(s.multiplier_at(Time::from_secs(5)), 9.0, "start-inclusive");
        assert_eq!(s.multiplier_at(Time::from_secs(6) - ns), 9.0);
        assert_eq!(s.multiplier_at(Time::from_secs(6)), 1.0, "end-exclusive");
        assert_eq!(s.multiplier_at(Time::from_secs(6) + ns), 1.0);
    }

    #[test]
    fn burst_at_time_zero_is_live_immediately() {
        // t == 0 with a burst starting at 0: idx is 1, not 0, so the
        // `idx > 0` guard must not mask the first burst.
        let s = RateSchedule::constant(1.0).with_burst(Time::ZERO, Time::from_secs(1), 4.0);
        assert_eq!(s.multiplier_at(Time::ZERO), 4.0);
        assert_eq!(s.multiplier_at(Time::from_secs(1)), 1.0);
    }

    #[test]
    fn carved_seams_hand_off_to_the_latest_added_burst() {
        // An old burst carved by a newer overlapping one leaves seams at
        // the newer burst's start and end. Exactly at each seam the
        // newer burst's half-open interval must win — its [start, end)
        // owns both boundary instants it touches.
        let s = RateSchedule::constant(1.0)
            .with_burst(Time::from_secs(10), Time::from_secs(20), 2.0)
            .with_burst(Time::from_secs(13), Time::from_secs(15), 7.0);
        let ns = Time::from_nanos(1);
        assert_eq!(s.multiplier_at(Time::from_secs(13) - ns), 2.0);
        assert_eq!(s.multiplier_at(Time::from_secs(13)), 7.0, "seam start");
        assert_eq!(s.multiplier_at(Time::from_secs(15) - ns), 7.0);
        assert_eq!(
            s.multiplier_at(Time::from_secs(15)),
            2.0,
            "seam end returns to the carved remainder, not the base"
        );
        assert_eq!(s.multiplier_at(Time::from_secs(20)), 1.0);
    }

    #[test]
    fn adjacent_bursts_share_a_boundary_without_a_gap() {
        // Two bursts meeting exactly: the shared instant belongs to the
        // later interval (end-exclusive/start-inclusive), with no
        // one-sample flash of the base level in between.
        let s = RateSchedule::constant(1.0)
            .with_burst(Time::from_secs(2), Time::from_secs(4), 3.0)
            .with_burst(Time::from_secs(4), Time::from_secs(6), 8.0);
        let ns = Time::from_nanos(1);
        assert_eq!(s.multiplier_at(Time::from_secs(4) - ns), 3.0);
        assert_eq!(s.multiplier_at(Time::from_secs(4)), 8.0);
        assert_eq!(s.multiplier_at(Time::from_secs(4) + ns), 8.0);
        assert_eq!(s.burst_count(), 2, "touching bursts do not merge or carve");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_shift_rejected() {
        let _ = RateSchedule::constant(1.0)
            .with_shift(Time::from_secs(10), 2.0)
            .with_shift(Time::from_secs(5), 3.0);
    }

    #[test]
    fn random_schedule_is_reproducible_and_in_range() {
        let build = || {
            let mut rng = StdRng::seed_from_u64(99);
            RateSchedule::random(
                &mut rng,
                Time::from_secs(3600),
                3.0,
                (0.2, 0.9),
                5.0,
                Time::from_secs(120),
                (2.0, 4.0),
            )
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same seed, same schedule");
        for m in (0..3600)
            .step_by(13)
            .map(|s| a.multiplier_at(Time::from_secs(s)))
        {
            assert!((0.2..=4.0).contains(&m), "multiplier {m} out of range");
        }
    }

    #[test]
    fn random_schedule_respects_zero_rates() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = RateSchedule::random(
            &mut rng,
            Time::from_secs(100),
            0.0,
            (1.0, 1.0),
            0.0,
            Time::from_secs(1),
            (1.0, 1.0),
        );
        assert_eq!(s.shift_count(), 0);
        assert_eq!(s.burst_count(), 0);
    }
}
