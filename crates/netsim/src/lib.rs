//! # tputpred-netsim — a deterministic packet-level network simulator
//!
//! The RON-testbed substitute for the reproduction of *On the
//! predictability of large transfer TCP throughput*: a discrete-event,
//! packet-level simulator of network paths with finite-buffer droptail
//! queues, propagation delays, and stochastic cross traffic.
//!
//! Following the event-driven design the networking guides recommend
//! (smoltcp-style simplicity; no async runtime — this is CPU-bound
//! simulation, not I/O):
//!
//! * [`engine::Simulator`] — the event scheduler over a nanosecond
//!   clock ([`time::Time`]): timers on a bucketed [`wheel::TimerWheel`],
//!   link serialization/propagation on per-link FIFO streams, with
//!   deterministic FIFO tie-breaking and a seeded RNG, so every
//!   experiment is exactly reproducible from its seed (DESIGN.md §14).
//! * [`link::Link`] — a unidirectional link: serialization at a configured
//!   rate, propagation delay, and a finite droptail FIFO buffer, with
//!   byte/drop/busy-time accounting (the ground truth behind avail-bw).
//! * [`packet::Packet`] — source-routed packets. The engine never reads
//!   payloads; the [`packet::Payload`] vocabulary (TCP segment metadata,
//!   probe metadata, raw filler) lives here only so TCP endpoints, probes
//!   and cross-traffic sources can share one packet type.
//! * [`engine::Endpoint`] — the trait protocol endpoints implement:
//!   callbacks for packet arrival and timer expiry, issuing commands
//!   (send, set timer) through an [`engine::Ctx`].
//! * [`sources`] — cross-traffic generators: constant-bit-rate, Poisson,
//!   and Pareto on-off (heavy-tailed bursts), plus a counting sink and an
//!   echo reflector for probes.
//! * [`schedule::RateSchedule`] — piecewise-constant load modulation with
//!   level shifts and transient outlier bursts: the §5.2 time-series
//!   pathologies, injected by construction.
//! * [`random`] — inverse-transform samplers (exponential, Pareto,
//!   log-normal) over any [`rand::Rng`].

pub mod engine;
pub mod link;
pub mod packet;
pub mod random;
pub mod schedule;
pub mod sources;
pub mod time;
pub mod wheel;

pub use engine::{Ctx, Endpoint, EndpointId, EngineCounters, EnginePool, PoolCapacity, Simulator};
pub use link::{Link, LinkConfig, LinkId, LinkStats};
pub use packet::{Packet, Payload, ProbeMeta, Route, TcpMeta, MAX_HOPS};
pub use schedule::RateSchedule;
pub use time::Time;
pub use wheel::{TimerEntry, TimerWheel};
