//! The discrete-event engine: scheduler, endpoint protocol, packet
//! forwarding.
//!
//! One [`Simulator`] owns the links, the endpoints, the event schedule,
//! and a seeded RNG. Endpoints implement [`Endpoint`] and interact with
//! the world exclusively through a [`Ctx`] handed to their callbacks —
//! its `send`/`set_timer` operations apply to the engine immediately, in
//! issue order (the callback's own endpoint is lifted out of the table
//! for the duration, so the borrow is sound and re-entry is impossible).
//! The event order is deterministic: events at equal timestamps dispatch
//! in scheduling order (FIFO tie-break), so a simulation is a pure
//! function of its seed and construction sequence.
//!
//! # Event schedule (DESIGN.md §14)
//!
//! The engine used to keep every pending event in one global
//! `BinaryHeap`; it now splits the schedule by event class, keyed
//! everywhere by the same global `(at, seq)` order the heap enforced
//! (`seq` is assigned at scheduling time from one engine-wide counter,
//! exactly where the old code pushed into the heap — so dispatch order
//! is bit-identical to the heap engine):
//!
//! * **Timers** go through a [`crate::wheel::TimerWheel`] — O(1)
//!   bucketed slots for the near future, an overflow heap past the
//!   ~1 s horizon.
//! * **Link events** never enter a queue at all. Each link has at most
//!   one pending serialization completion (the serializer is busy with
//!   exactly one packet) and a FIFO of in-flight arrivals (propagation
//!   delay is constant per link, so arrival order equals transmission
//!   order and the deque stays sorted by construction). A step takes
//!   the minimum `(at, seq)` across the wheel head and the per-link
//!   heads — a two-compare scan for the simulator's typical two links.
//!
//! Past-due timers are **clamped to `now` in every build** (counted in
//! [`EngineCounters::timer_clamps`]); the clock is monotonic — a
//! backward [`Simulator::run_until`] is a no-op. Both used to be
//! `debug_assert!`-only guards, which let release builds dispatch a
//! late timer "in the past" or rewind the clock and so diverge from
//! debug replays.
//!
//! Packet life cycle:
//!
//! 1. an endpoint `ctx.send(...)`s a packet with a [`crate::Route`];
//! 2. the engine offers it to the route's first link — if the serializer
//!    is idle transmission starts, if the buffer has room it queues,
//!    otherwise it is dropped (droptail);
//! 3. when serialization completes the engine schedules the arrival after
//!    the link's propagation delay and starts the link's next queued
//!    packet;
//! 4. on arrival the packet either enters the next link of its route or is
//!    delivered to the destination endpoint's
//!    [`Endpoint::on_packet`].

use crate::link::{Link, LinkConfig, LinkId, Offer};
use crate::packet::{Packet, Payload, Route};
use crate::time::Time;
use crate::wheel::{TimerEntry, TimerWheel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Identifies an endpoint within a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EndpointId(pub u32);

/// The world handle passed to endpoint callbacks.
///
/// Operations apply to the engine immediately, in issue order — exactly
/// the order a deferred command queue would have replayed them in, so
/// dispatch sequence numbers (and with them the whole simulation) are
/// unchanged relative to the queued design this replaced. Routing a
/// fresh send never re-enters an endpoint (routes are non-empty, so the
/// packet always lands in a link, never a destination), and the engine
/// itself draws no randomness, so the RNG stream the callback sees is
/// also unchanged.
pub struct Ctx<'a> {
    /// Current simulated time.
    pub now: Time,
    /// The endpoint being called.
    pub self_id: EndpointId,
    sim: &'a mut Simulator,
}

impl Ctx<'_> {
    /// Sends a packet of `size` bytes along `route` to `dst`.
    // lint:hot-path
    pub fn send(&mut self, route: Route, dst: EndpointId, size: u32, payload: Payload) {
        self.sim.counters.commands_applied += 1;
        self.sim.route_packet(Packet {
            size,
            src: self.self_id,
            dst,
            route,
            hop_index: 0,
            payload,
        });
    }

    /// Arms (or re-arms) a timer: [`Endpoint::on_timer`] fires with
    /// `token` at absolute time `at`. Timers are not cancellable —
    /// endpoints version their tokens and ignore stale ones, the idiom
    /// TCP's retransmission timer uses. A past-due `at` is clamped to
    /// the current time (see [`EngineCounters::timer_clamps`]).
    // lint:hot-path
    pub fn set_timer(&mut self, token: u64, at: Time) {
        self.sim.counters.commands_applied += 1;
        let at = self.sim.clamp_to_now(at);
        let seq = self.sim.next_seq();
        self.sim.wheel_push(TimerEntry {
            at,
            seq,
            endpoint: self.self_id,
            token,
        });
    }

    /// Arms a timer to fire `delay` from now.
    pub fn set_timer_after(&mut self, token: u64, delay: Time) {
        let at = self.now + delay;
        self.set_timer(token, at);
    }

    /// The simulation's deterministic RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.sim.rng
    }
}

/// A protocol endpoint: TCP sender/receiver, probe, traffic source, sink.
pub trait Endpoint {
    /// A packet addressed to this endpoint arrived.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet);

    /// A timer armed with `token` fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64);
}

/// Sentinel event key meaning "no event pending": real keys pack a
/// finite timestamp, so the sentinel compares after every live key and
/// the head scan needs no `Option` branches.
const KEY_NONE: u128 = u128::MAX;

/// Packs an `(at, seq)` scheduling key into one `u128` whose numeric
/// order equals the lexicographic `(at, seq)` order — the per-event
/// head scan compares single integers instead of two-field tuples.
// lint:hot-path
const fn key(at: Time, seq: u64) -> u128 {
    ((at.as_nanos() as u128) << 64) | seq as u128
}

/// The timestamp half of a packed key.
// lint:hot-path
const fn key_at(k: u128) -> Time {
    Time::from_nanos((k >> 64) as u64)
}

/// Pending engine events for one link: the single in-serializer
/// completion and the FIFO of packets in propagation. Every entry
/// carries the `(at, seq)` key it would have had in the old global
/// heap; both sequences are nondecreasing in `at` by construction
/// (serialization completes in start order; propagation delay is a
/// per-link constant), so each head is this link's earliest event.
///
/// The head keys are mirrored as packed [`key`] fields at the top
/// of the struct ([`KEY_NONE`] when empty): the per-event scan in
/// [`Simulator::peek_next`] touches only these, never the `VecDeque`
/// ring or the packets behind it.
#[derive(Debug)]
struct LinkEvents {
    /// Key of the in-serializer completion ([`KEY_NONE`] when idle).
    tx_key: u128,
    /// Key of the head of `arrivals` ([`KEY_NONE`] when empty).
    arr_key: u128,
    /// The packet in the serializer (present iff `tx_key` is live).
    tx_pkt: Option<Packet>,
    /// `(arrival time, seq, packet)` of packets in propagation, FIFO.
    arrivals: VecDeque<(Time, u64, Packet)>,
}

impl Default for LinkEvents {
    fn default() -> Self {
        LinkEvents {
            tx_key: KEY_NONE,
            arr_key: KEY_NONE,
            tx_pkt: None,
            arrivals: VecDeque::new(),
        }
    }
}

/// Which schedule holds the next event (resolved by [`Simulator::peek_next`]).
#[derive(Debug, Clone, Copy)]
enum Pending {
    Timer,
    TxDone(u32),
    Arrival(u32),
}

/// Deterministic engine-level tallies, maintained inline by the event
/// loop (plain integers — no atomics, no clocks) so they are a pure
/// function of the simulation inputs. Harvested by the telemetry layer
/// *after* a run; the engine itself never reads them back.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineCounters {
    /// Total events dispatched ([`Simulator::step`] calls that popped).
    /// Derived: the sum of the three per-kind event tallies.
    pub events: u64,
    /// Timer callbacks dispatched.
    pub timer_events: u64,
    /// Link serializations completed.
    pub txdone_events: u64,
    /// Propagation arrivals dispatched.
    pub arrival_events: u64,
    /// Packets offered to a link (one per hop entry). Derived: the sum
    /// of the three offer outcomes.
    pub packets_offered: u64,
    /// Offers that started transmitting immediately.
    pub packets_tx_started: u64,
    /// Offers that entered a link queue.
    pub packets_queued: u64,
    /// Offers dropped at a full buffer (droptail/RED).
    pub packets_dropped: u64,
    /// Packets delivered to a destination endpoint.
    pub packets_delivered: u64,
    /// Endpoint commands applied (sends + timer arms).
    pub commands_applied: u64,
    /// Past-due timer arms clamped up to `now` (identical in debug and
    /// release builds; zero in a well-behaved simulation).
    pub timer_clamps: u64,
    /// Timer entries placed into near-future wheel slots (migrations
    /// from the overflow heap count again here).
    pub wheel_scheduled: u64,
    /// Timer entries that spilled past the wheel horizon into the
    /// overflow heap.
    pub overflow_scheduled: u64,
    /// Overflow entries migrated into wheel slots as the horizon
    /// advanced.
    pub overflow_migrated: u64,
}

/// Recyclable engine allocations: the timer wheel's slot buckets and
/// per-link event state. Capacity-only —
/// a pool never carries events, endpoints, RNG state, or any other
/// behavior between simulations, so pooled and fresh runs are
/// bit-identical (asserted by `pooled_simulators_replay_identically`).
///
/// A generation run builds 2800+ simulators; without pooling each one
/// re-grows the same buffers from zero. [`Simulator::with_pool`] seeds a
/// new simulator from a pool and [`Simulator::into_pool`] returns the
/// (cleared) buffers when the run is done.
#[derive(Debug, Default)]
pub struct EnginePool {
    wheel: TimerWheel,
    link_events: Vec<LinkEvents>,
}

impl EnginePool {
    /// An empty pool (first use allocates; later round-trips reuse).
    pub fn new() -> Self {
        EnginePool::default()
    }

    /// Retained capacities, for steady-state assertions: after a couple
    /// of pool round-trips through identical workloads, this profile
    /// must stop growing.
    pub fn capacity(&self) -> PoolCapacity {
        let (wheel_slot_entries, wheel_batch_entries, overflow_entries) =
            self.wheel.capacity_profile();
        PoolCapacity {
            wheel_slot_entries,
            wheel_batch_entries,
            overflow_entries,
            link_states: self.link_events.len(),
            arrival_entries: self
                .link_events
                .iter()
                .map(|le| le.arrivals.capacity())
                .sum(),
        }
    }
}

/// Snapshot of an [`EnginePool`]'s retained buffer capacities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolCapacity {
    /// Summed capacity of the wheel's slot buckets.
    pub wheel_slot_entries: usize,
    /// Capacity of the wheel's extracted-batch buffer.
    pub wheel_batch_entries: usize,
    /// Capacity of the wheel's overflow heap.
    pub overflow_entries: usize,
    /// Pooled per-link event states.
    pub link_states: usize,
    /// Summed capacity of the per-link arrival FIFOs.
    pub arrival_entries: usize,
}

/// The discrete-event simulator.
///
/// # Examples
///
/// Build a one-link world with an echoing endpoint and run it:
///
/// ```
/// use tputpred_netsim::*;
/// use tputpred_netsim::link::LinkConfig;
///
/// struct Sink(u64);
/// impl Endpoint for Sink {
///     fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) { self.0 += 1; }
///     fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: u64) {}
/// }
/// struct Pulse { link: LinkId, dst: EndpointId }
/// impl Endpoint for Pulse {
///     fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) {}
///     fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
///         ctx.send(Route::direct(self.link), self.dst, 1500, Payload::Raw);
///     }
/// }
///
/// let mut sim = Simulator::new(42);
/// let link = sim.add_link(LinkConfig::new(10e6, Time::from_millis(5), 50));
/// let sink = sim.add_endpoint(Box::new(Sink(0)));
/// let pulse = sim.add_endpoint(Box::new(Pulse { link, dst: sink }));
/// sim.schedule_timer(pulse, 0, Time::ZERO);
/// sim.run_until(Time::from_secs(1));
/// assert_eq!(sim.link(link).stats().packets_out, 1);
/// ```
pub struct Simulator {
    now: Time,
    seq: u64,
    wheel: TimerWheel,
    /// Cached packed key of the wheel's earliest entry ([`KEY_NONE`]
    /// when the wheel is empty), maintained on every push and pop so
    /// the per-event head scan never calls into the wheel.
    wheel_head: u128,
    links: Vec<Link>,
    /// Parallel to `links`.
    link_events: Vec<LinkEvents>,
    /// Cleared [`LinkEvents`] recycled from a pool, handed out by
    /// [`Simulator::add_link`].
    spare_link_events: Vec<LinkEvents>,
    endpoints: Vec<Option<Box<dyn Endpoint>>>,
    rng: StdRng,
    counters: EngineCounters,
}

impl Simulator {
    /// Creates an empty simulation with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        Simulator::with_pool(seed, EnginePool::new())
    }

    /// Like [`Simulator::new`], but reusing the buffers of `pool`
    /// (capacity-only: behavior is identical to a fresh simulator).
    pub fn with_pool(seed: u64, pool: EnginePool) -> Self {
        Simulator {
            now: Time::ZERO,
            seq: 0,
            wheel: pool.wheel,
            wheel_head: KEY_NONE,
            links: Vec::new(),
            link_events: Vec::new(),
            spare_link_events: pool.link_events,
            endpoints: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            counters: EngineCounters::default(),
        }
    }

    /// Tears the simulator down into a reusable [`EnginePool`]. All
    /// pending events are discarded; only buffer capacity survives.
    pub fn into_pool(self) -> EnginePool {
        let Simulator {
            mut wheel,
            link_events,
            mut spare_link_events,
            ..
        } = self;
        wheel.clear();
        for mut le in link_events {
            le.tx_key = KEY_NONE;
            le.arr_key = KEY_NONE;
            le.tx_pkt = None;
            le.arrivals.clear();
            spare_link_events.push(le);
        }
        EnginePool {
            wheel,
            link_events: spare_link_events,
        }
    }

    /// Adds a link; returns its id.
    pub fn add_link(&mut self, config: LinkConfig) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(config));
        self.link_events
            .push(self.spare_link_events.pop().unwrap_or_default());
        id
    }

    /// Adds an endpoint; returns its id.
    pub fn add_endpoint(&mut self, endpoint: Box<dyn Endpoint>) -> EndpointId {
        let id = EndpointId(self.endpoints.len() as u32);
        self.endpoints.push(Some(endpoint));
        id
    }

    /// Read access to a link (its config and statistics).
    ///
    /// # Panics
    ///
    /// Panics on an id from another simulator.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events dispatched so far (engine-throughput benchmarks).
    pub fn events_processed(&self) -> u64 {
        let c = &self.counters;
        c.timer_events + c.txdone_events + c.arrival_events
    }

    /// Deterministic engine-level tallies (events by kind, packet
    /// offer outcomes, commands applied, timer-wheel scheduling). The
    /// two aggregate tallies are derived here rather than double-counted
    /// in the event loop.
    pub fn counters(&self) -> EngineCounters {
        let mut c = self.counters;
        c.events = c.timer_events + c.txdone_events + c.arrival_events;
        c.packets_offered = c.packets_tx_started + c.packets_queued + c.packets_dropped;
        let w = self.wheel.counters();
        c.wheel_scheduled = w.wheel_scheduled;
        c.overflow_scheduled = w.overflow_scheduled;
        c.overflow_migrated = w.overflow_migrated;
        c
    }

    /// All links, in id order (telemetry aggregates per-link stats).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Arms a timer on `endpoint` from outside the simulation (drivers use
    /// this to bootstrap: endpoints themselves can only arm timers from
    /// within callbacks). A past-due `at` is clamped to `now` (counted in
    /// [`EngineCounters::timer_clamps`]) — identically in debug and
    /// release builds.
    pub fn schedule_timer(&mut self, endpoint: EndpointId, token: u64, at: Time) {
        let at = self.clamp_to_now(at);
        let seq = self.next_seq();
        self.wheel_push(TimerEntry {
            at,
            seq,
            endpoint,
            token,
        });
    }

    /// Pushes onto the wheel, keeping the cached head key current.
    // lint:hot-path
    fn wheel_push(&mut self, entry: TimerEntry) {
        let k = key(entry.at, entry.seq);
        if k < self.wheel_head {
            self.wheel_head = k;
        }
        // lint:allow(hot-path-alloc): TimerWheel::push is O(1) bucketing, not container growth; its internal buffers carry their own justified allows
        self.wheel.push(entry, self.now);
    }

    /// Allocates the next global scheduling sequence number — the FIFO
    /// tie-break for same-timestamp events, assigned in exactly the
    /// order the old heap engine pushed.
    // lint:hot-path
    fn next_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// Clamps a timer fire time to `now`, counting the clamp. Keeps
    /// release and debug replays identical where a `debug_assert!` used
    /// to let release builds enqueue past-due timers.
    // lint:hot-path
    fn clamp_to_now(&mut self, at: Time) -> Time {
        if at < self.now {
            self.counters.timer_clamps += 1;
            self.now
        } else {
            at
        }
    }

    /// The packed key and source of the earliest pending event — a
    /// pure scan over the cached wheel head and the per-link head keys
    /// ([`KEY_NONE`] sentinels mean no branches on emptiness).
    // lint:hot-path
    fn peek_next(&self) -> Option<(u128, Pending)> {
        let mut best = self.wheel_head;
        let mut which = Pending::Timer;
        for (i, le) in self.link_events.iter().enumerate() {
            if le.tx_key < best {
                best = le.tx_key;
                which = Pending::TxDone(i as u32);
            }
            if le.arr_key < best {
                best = le.arr_key;
                which = Pending::Arrival(i as u32);
            }
        }
        if best == KEY_NONE {
            None
        } else {
            Some((best, which))
        }
    }

    /// Dispatches a single event. Returns `false` when no events are
    /// pending.
    // lint:hot-path
    pub fn step(&mut self) -> bool {
        match self.peek_next() {
            Some((_, pending)) => {
                self.dispatch(pending);
                true
            }
            None => false,
        }
    }

    /// Pops and executes the event `peek_next` resolved. The clock only
    /// moves forward (`max`): a clamped past-due entry must not rewind
    /// it.
    // lint:hot-path
    fn dispatch(&mut self, pending: Pending) {
        match pending {
            Pending::Timer => {
                // `peek_next` saw the cached head. The live batch holds
                // it unless the head sits in a slot not yet extracted —
                // then the full pop runs the advance.
                let popped = match self.wheel.pop_head() {
                    Some(e) => Some(e),
                    None => self.wheel.pop(self.now),
                };
                if let Some(e) = popped {
                    debug_assert!(key(e.at, e.seq) == self.wheel_head, "stale wheel head");
                    self.wheel_head = self
                        .wheel
                        .peek_key(self.now)
                        .map_or(KEY_NONE, |(a, s)| key(a, s));
                    self.now = self.now.max(e.at);
                    self.counters.timer_events += 1;
                    self.call_endpoint(e.endpoint, |ep, ctx| ep.on_timer(ctx, e.token));
                }
            }
            Pending::TxDone(i) => {
                let li = i as usize;
                let le = &mut self.link_events[li];
                if let Some(packet) = le.tx_pkt.take() {
                    let at = key_at(le.tx_key);
                    le.tx_key = KEY_NONE;
                    self.now = self.now.max(at);
                    self.counters.txdone_events += 1;
                    let l = &mut self.links[li];
                    let next = l.finish_tx(&packet, self.now);
                    let delay = l.delay();
                    if let Some((next_pkt, done)) = next {
                        // Seq order matches the old heap engine: the
                        // follow-on TxDone was pushed before the arrival.
                        let seq = self.next_seq();
                        let le = &mut self.link_events[li];
                        le.tx_key = key(done, seq);
                        le.tx_pkt = Some(next_pkt);
                    }
                    let mut sent = packet;
                    sent.advance_hop();
                    let seq = self.next_seq();
                    let arrive = self.now + delay;
                    let le = &mut self.link_events[li];
                    if let Some(&(tail_at, _, _)) = le.arrivals.back() {
                        debug_assert!(tail_at <= arrive, "arrival FIFO out of order");
                    } else {
                        le.arr_key = key(arrive, seq);
                    }
                    // lint:allow(hot-path-alloc): per-link arrival FIFO retains capacity (pooled across traces)
                    le.arrivals.push_back((arrive, seq, sent));
                }
            }
            Pending::Arrival(i) => {
                let le = &mut self.link_events[i as usize];
                if let Some((at, _seq, packet)) = le.arrivals.pop_front() {
                    le.arr_key = le.arrivals.front().map_or(KEY_NONE, |&(a, s, _)| key(a, s));
                    self.now = self.now.max(at);
                    self.counters.arrival_events += 1;
                    self.route_packet(packet);
                }
            }
        }
    }

    /// Runs all events up to and including time `t`, then advances the
    /// clock to `t`. Monotonic: calling with `t` earlier than the
    /// current time dispatches nothing and leaves the clock untouched
    /// (a `debug_assert!` used to let release builds rewind it).
    pub fn run_until(&mut self, t: Time) {
        while let Some((k, pending)) = self.peek_next() {
            if key_at(k) > t {
                break;
            }
            self.dispatch(pending);
        }
        self.now = self.now.max(t);
    }

    /// Runs until the event schedule drains (all traffic quiesces).
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    /// Offers `packet` to the next link on its route, or delivers it.
    // lint:hot-path
    fn route_packet(&mut self, packet: Packet) {
        match packet.next_hop() {
            Some(link_id) => {
                let li = link_id.0 as usize;
                let link = &mut self.links[li];
                match link.offer(packet, self.now) {
                    Offer::StartTx => {
                        self.counters.packets_tx_started += 1;
                        let done = link.begin_tx(&packet, self.now);
                        let seq = self.next_seq();
                        let le = &mut self.link_events[li];
                        debug_assert!(le.tx_pkt.is_none(), "serializer already busy");
                        le.tx_key = key(done, seq);
                        le.tx_pkt = Some(packet);
                    }
                    Offer::Queued => {
                        self.counters.packets_queued += 1;
                    }
                    Offer::Dropped => {
                        self.counters.packets_dropped += 1;
                    }
                }
            }
            None => {
                self.counters.packets_delivered += 1;
                let dst = packet.dst;
                self.call_endpoint(dst, |ep, ctx| ep.on_packet(ctx, packet));
            }
        }
    }

    /// Invokes an endpoint callback with a fresh [`Ctx`]. The endpoint
    /// is lifted out of its table slot for the duration, so the
    /// callback's engine operations (which borrow the whole simulator
    /// through the [`Ctx`]) cannot re-enter it.
    // lint:hot-path
    fn call_endpoint<F>(&mut self, id: EndpointId, f: F)
    where
        F: FnOnce(&mut dyn Endpoint, &mut Ctx<'_>),
    {
        let slot = id.0 as usize;
        let mut ep = self.endpoints[slot]
            .take()
            .unwrap_or_else(|| panic!("endpoint {slot} re-entered or missing"));
        let mut ctx = Ctx {
            now: self.now,
            self_id: id,
            sim: self,
        };
        f(ep.as_mut(), &mut ctx);
        self.endpoints[slot] = Some(ep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Records arrival times of every packet it receives.
    struct Recorder {
        arrivals: Rc<RefCell<Vec<Time>>>,
    }
    impl Endpoint for Recorder {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _p: Packet) {
            self.arrivals.borrow_mut().push(ctx.now);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: u64) {}
    }

    /// Sends `count` packets back-to-back when its timer fires.
    struct Burst {
        route: Route,
        dst: EndpointId,
        count: u32,
        size: u32,
    }
    impl Endpoint for Burst {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
            for _ in 0..self.count {
                ctx.send(self.route, self.dst, self.size, Payload::Raw);
            }
        }
    }

    fn world(
        rate: f64,
        // lint:allow(units): whole-ms test grid; converted via Time::from_millis below
        delay_ms: u64,
        buffer: u32,
        burst: u32,
        size: u32,
    ) -> (Simulator, LinkId, Rc<RefCell<Vec<Time>>>) {
        // lint:allow(units): forwards the whole-ms test grid unchanged
        world_with_pool(EnginePool::new(), rate, delay_ms, buffer, burst, size)
    }

    fn world_with_pool(
        pool: EnginePool,
        rate: f64,
        // lint:allow(units): whole-ms test grid; converted via Time::from_millis below
        delay_ms: u64,
        buffer: u32,
        burst: u32,
        size: u32,
    ) -> (Simulator, LinkId, Rc<RefCell<Vec<Time>>>) {
        let mut sim = Simulator::with_pool(7, pool);
        // lint:allow(units): conversion is explicit at the use site
        let link = sim.add_link(LinkConfig::new(rate, Time::from_millis(delay_ms), buffer));
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let sink = sim.add_endpoint(Box::new(Recorder {
            arrivals: Rc::clone(&arrivals),
        }));
        let src = sim.add_endpoint(Box::new(Burst {
            route: Route::direct(link),
            dst: sink,
            count: burst,
            size,
        }));
        sim.schedule_timer(src, 0, Time::ZERO);
        (sim, link, arrivals)
    }

    #[test]
    fn single_packet_arrives_after_tx_plus_propagation() {
        // 1500 B at 12 Mbps = 1 ms tx; +5 ms propagation = 6 ms.
        let (mut sim, _, arrivals) = world(12e6, 5, 50, 1, 1500);
        sim.run_until(Time::from_secs(1));
        assert_eq!(*arrivals.borrow(), vec![Time::from_millis(6)]);
    }

    #[test]
    fn back_to_back_packets_are_paced_by_serialization() {
        let (mut sim, _, arrivals) = world(12e6, 5, 50, 3, 1500);
        sim.run_until(Time::from_secs(1));
        let a = arrivals.borrow();
        assert_eq!(a.len(), 3);
        // Spaced exactly one serialization time (1 ms) apart.
        assert_eq!(a[1] - a[0], Time::from_millis(1));
        assert_eq!(a[2] - a[1], Time::from_millis(1));
    }

    #[test]
    fn droptail_loses_overflow_packets() {
        // Buffer holds two queued packets; burst of 5 → 1 in serializer,
        // 2 queued, 2 dropped.
        let (mut sim, link, arrivals) = world(12e6, 5, 2, 5, 1500);
        sim.run_until(Time::from_secs(1));
        assert_eq!(arrivals.borrow().len(), 3);
        assert_eq!(sim.link(link).stats().drops, 2);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sim = Simulator::new(1);
        sim.run_until(Time::from_secs(10));
        assert_eq!(sim.now(), Time::from_secs(10));
    }

    #[test]
    fn run_until_backward_is_a_monotonic_no_op() {
        // Regression (release/debug divergence): run_until(t < now) used
        // to rewind the clock in release builds. It must be a no-op that
        // neither rewinds time nor dispatches future events.
        let (mut sim, _, arrivals) = world(12e6, 5, 50, 1, 1500);
        sim.run_until(Time::from_millis(100));
        assert_eq!(arrivals.borrow().len(), 1);
        sim.run_until(Time::from_millis(3));
        assert_eq!(sim.now(), Time::from_millis(100));
        // The engine still works normally afterwards.
        sim.run_until(Time::from_secs(1));
        assert_eq!(sim.now(), Time::from_secs(1));
    }

    #[test]
    fn equal_time_events_dispatch_in_scheduling_order() {
        struct Logger {
            tag: u64,
            log: Rc<RefCell<Vec<u64>>>,
        }
        impl Endpoint for Logger {
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                self.log.borrow_mut().push(self.tag * 100 + token);
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(1);
        let a = sim.add_endpoint(Box::new(Logger {
            tag: 1,
            log: Rc::clone(&log),
        }));
        let b = sim.add_endpoint(Box::new(Logger {
            tag: 2,
            log: Rc::clone(&log),
        }));
        let t = Time::from_millis(5);
        sim.schedule_timer(b, 1, t);
        sim.schedule_timer(a, 2, t);
        sim.schedule_timer(b, 3, t);
        sim.run_until(Time::from_secs(1));
        assert_eq!(*log.borrow(), vec![201, 102, 203]);
    }

    #[test]
    fn past_due_timer_clamps_to_now_in_all_builds() {
        // Regression (release/debug divergence): arming a timer behind
        // the clock used to pass a debug_assert-only guard and dispatch
        // "in the past" in release builds. It must clamp to `now`, be
        // counted, and keep FIFO order against same-time timers — with
        // byte-identical behavior whether debug assertions are on.
        struct Logger {
            tag: u64,
            log: Rc<RefCell<Vec<u64>>>,
        }
        impl Endpoint for Logger {
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                self.log.borrow_mut().push(self.tag * 100 + token);
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(1);
        let a = sim.add_endpoint(Box::new(Logger {
            tag: 1,
            log: Rc::clone(&log),
        }));
        let b = sim.add_endpoint(Box::new(Logger {
            tag: 2,
            log: Rc::clone(&log),
        }));
        sim.schedule_timer(a, 1, Time::from_millis(5));
        sim.run_until(Time::from_millis(10));
        // Late by 7 ms: clamps to now = 10 ms.
        sim.schedule_timer(a, 2, Time::from_millis(3));
        // Same fire time, armed after: must dispatch after the clamped one.
        sim.schedule_timer(b, 3, Time::from_millis(10));
        sim.run_until(Time::from_secs(1));
        assert_eq!(*log.borrow(), vec![101, 102, 203]);
        assert_eq!(sim.counters().timer_clamps, 1);
    }

    #[test]
    fn late_ctx_timer_clamps_and_fires_at_now() {
        // The same clamp via the endpoint-facing path (Ctx::set_timer
        // from inside a callback).
        struct LateArmer {
            fired_at: Rc<RefCell<Vec<Time>>>,
        }
        impl Endpoint for LateArmer {
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                self.fired_at.borrow_mut().push(ctx.now);
                if token == 0 {
                    // Asks for the past; the engine must clamp to now.
                    ctx.set_timer(1, Time::ZERO);
                }
            }
        }
        let fired_at = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(1);
        let ep = sim.add_endpoint(Box::new(LateArmer {
            fired_at: Rc::clone(&fired_at),
        }));
        sim.schedule_timer(ep, 0, Time::from_millis(20));
        sim.run_until(Time::from_secs(1));
        let t20 = Time::from_millis(20);
        assert_eq!(*fired_at.borrow(), vec![t20, t20]);
        assert_eq!(sim.counters().timer_clamps, 1);
    }

    #[test]
    fn far_future_timers_cross_the_wheel_horizon() {
        // A 60 s RTO-style timer lies far past the ~1 s wheel horizon:
        // it must spill to the overflow heap, migrate back in, and fire
        // exactly on time and in order.
        struct Logger {
            log: Rc<RefCell<Vec<(u64, Time)>>>,
        }
        impl Endpoint for Logger {
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                self.log.borrow_mut().push((token, ctx.now));
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(1);
        let ep = sim.add_endpoint(Box::new(Logger {
            log: Rc::clone(&log),
        }));
        sim.schedule_timer(ep, 0, Time::from_secs(60));
        sim.schedule_timer(ep, 1, Time::from_millis(100));
        sim.schedule_timer(ep, 2, Time::from_secs(2));
        sim.run_to_quiescence();
        assert_eq!(
            *log.borrow(),
            vec![
                (1, Time::from_millis(100)),
                (2, Time::from_secs(2)),
                (0, Time::from_secs(60)),
            ]
        );
        let c = sim.counters();
        assert!(c.overflow_scheduled >= 2, "{c:?}");
        assert_eq!(c.overflow_migrated, c.overflow_scheduled);
    }

    #[test]
    fn multi_hop_route_traverses_both_links() {
        let mut sim = Simulator::new(1);
        let l1 = sim.add_link(LinkConfig::new(12e6, Time::from_millis(5), 50));
        let l2 = sim.add_link(LinkConfig::new(12e6, Time::from_millis(7), 50));
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let sink = sim.add_endpoint(Box::new(Recorder {
            arrivals: Rc::clone(&arrivals),
        }));
        let src = sim.add_endpoint(Box::new(Burst {
            route: Route::new(&[l1, l2]),
            dst: sink,
            count: 1,
            size: 1500,
        }));
        sim.schedule_timer(src, 0, Time::ZERO);
        sim.run_until(Time::from_secs(1));
        // 1 ms tx + 5 ms + 1 ms tx + 7 ms = 14 ms.
        assert_eq!(*arrivals.borrow(), vec![Time::from_millis(14)]);
        assert_eq!(sim.link(l1).stats().packets_out, 1);
        assert_eq!(sim.link(l2).stats().packets_out, 1);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed: u64| -> Vec<Time> {
            let (mut sim, _, arrivals) = world(12e6, 5, 2, 5, 1500);
            let _ = seed; // world is deterministic regardless; assert replay
            sim.run_until(Time::from_secs(1));
            let a = arrivals.borrow().clone();
            a
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn pooled_simulators_replay_identically_with_stable_capacity() {
        // Pooling is capacity-only: a pooled run must be bit-identical
        // to a fresh one, and after a warm-up round-trip the pool's
        // capacity profile must stop growing (the satellite-3 leak:
        // buffers used to re-grow from zero in every trace).
        let run = |pool: EnginePool| -> (Vec<Time>, EngineCounters, EnginePool) {
            let (mut sim, _, arrivals) = world_with_pool(pool, 12e6, 5, 2, 5, 1500);
            sim.run_to_quiescence();
            let a = arrivals.borrow().clone();
            let c = sim.counters();
            (a, c, sim.into_pool())
        };
        let (fresh, fresh_counters, pool) = run(EnginePool::new());
        let warm_capacity = pool.capacity();
        assert!(warm_capacity.link_states > 0);
        assert!(warm_capacity.arrival_entries > 0);
        let (second, second_counters, pool) = run(pool);
        assert_eq!(second, fresh);
        assert_eq!(second_counters, fresh_counters);
        let (third, _, pool) = run(pool);
        assert_eq!(third, fresh);
        // Steady state: identical workloads stop growing the pool.
        assert_eq!(pool.capacity(), warm_capacity);
    }

    #[test]
    fn engine_counters_reconcile_with_link_stats() {
        // Burst of 5 into a 2-deep buffer: 1 starts tx, 2 queue, 2 drop.
        let (mut sim, link, arrivals) = world(12e6, 5, 2, 5, 1500);
        sim.run_to_quiescence();
        let c = sim.counters();
        assert_eq!(c.packets_offered, 5);
        assert_eq!(c.packets_tx_started, 1);
        assert_eq!(c.packets_queued, 2);
        assert_eq!(c.packets_dropped, 2);
        assert_eq!(c.packets_dropped, sim.link(link).stats().drops);
        assert_eq!(c.packets_delivered, arrivals.borrow().len() as u64);
        assert_eq!(c.txdone_events, sim.link(link).stats().packets_out);
        assert_eq!(
            c.events,
            c.timer_events + c.txdone_events + c.arrival_events
        );
        assert_eq!(c.events, sim.events_processed());
        assert_eq!(c.wheel_scheduled, c.timer_events, "every timer bucketed");
        assert_eq!(c.timer_clamps, 0);
        // Replay: counters are part of the deterministic output.
        let (mut sim2, _, _) = world(12e6, 5, 2, 5, 1500);
        sim2.run_to_quiescence();
        assert_eq!(sim2.counters(), c);
    }

    #[test]
    fn quiescence_drains_all_events() {
        let (mut sim, link, arrivals) = world(12e6, 5, 50, 4, 1500);
        sim.run_to_quiescence();
        assert_eq!(arrivals.borrow().len(), 4);
        assert_eq!(sim.link(link).stats().packets_out, 4);
        assert!(!sim.step(), "schedule is empty");
    }
}
