//! The discrete-event engine: scheduler, endpoint protocol, packet
//! forwarding.
//!
//! One [`Simulator`] owns the links, the endpoints, the event heap, and a
//! seeded RNG. Endpoints implement [`Endpoint`] and interact with the
//! world exclusively through a [`Ctx`] handed to their callbacks — they
//! queue [`Command`]s (send a packet, arm a timer) which the engine
//! applies after the callback returns. This keeps borrows trivial and the
//! event order deterministic: events at equal timestamps dispatch in
//! scheduling order (FIFO tie-break), so a simulation is a pure function
//! of its seed and construction sequence.
//!
//! Packet life cycle:
//!
//! 1. an endpoint `ctx.send(...)`s a packet with a [`crate::Route`];
//! 2. the engine offers it to the route's first link — if the serializer
//!    is idle transmission starts, if the buffer has room it queues,
//!    otherwise it is dropped (droptail);
//! 3. when serialization completes the engine schedules the arrival after
//!    the link's propagation delay and starts the link's next queued
//!    packet;
//! 4. on arrival the packet either enters the next link of its route or is
//!    delivered to the destination endpoint's
//!    [`Endpoint::on_packet`].

use crate::link::{Link, LinkConfig, LinkId, Offer};
use crate::packet::{Packet, Payload, Route};
use crate::time::Time;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifies an endpoint within a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EndpointId(pub u32);

/// An instruction an endpoint issues through its [`Ctx`].
#[derive(Debug, Clone)]
pub enum Command {
    /// Inject a packet into the network.
    Send(Packet),
    /// Arm (or re-arm) a timer: [`Endpoint::on_timer`] fires with `token`
    /// at time `at`. Timers are not cancellable — endpoints version their
    /// tokens and ignore stale ones, the idiom TCP's retransmission timer
    /// uses.
    SetTimer { token: u64, at: Time },
}

/// The world handle passed to endpoint callbacks.
pub struct Ctx<'a> {
    /// Current simulated time.
    pub now: Time,
    /// The endpoint being called.
    pub self_id: EndpointId,
    rng: &'a mut StdRng,
    commands: &'a mut Vec<Command>,
}

impl Ctx<'_> {
    /// Sends a packet of `size` bytes along `route` to `dst`.
    // lint:hot-path
    pub fn send(&mut self, route: Route, dst: EndpointId, size: u32, payload: Payload) {
        // lint:allow(hot-path-alloc): scratch command buffer retains capacity across callbacks
        self.commands.push(Command::Send(Packet {
            size,
            src: self.self_id,
            dst,
            route,
            hop_index: 0,
            payload,
        }));
    }

    /// Arms a timer to fire at absolute time `at`.
    // lint:hot-path
    pub fn set_timer(&mut self, token: u64, at: Time) {
        // lint:allow(hot-path-alloc): same retained scratch command buffer as send
        self.commands.push(Command::SetTimer { token, at });
    }

    /// Arms a timer to fire `delay` from now.
    pub fn set_timer_after(&mut self, token: u64, delay: Time) {
        let at = self.now + delay;
        self.set_timer(token, at);
    }

    /// The simulation's deterministic RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// A protocol endpoint: TCP sender/receiver, probe, traffic source, sink.
pub trait Endpoint {
    /// A packet addressed to this endpoint arrived.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet);

    /// A timer armed with `token` fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64);
}

#[derive(Debug)]
enum EventKind {
    Timer {
        endpoint: EndpointId,
        token: u64,
    },
    /// A link finished serializing `packet`.
    TxDone {
        link: LinkId,
        packet: Packet,
    },
    /// `packet` finished propagating; enter next hop or deliver.
    Arrival {
        packet: Packet,
    },
}

struct Scheduled {
    at: Time,
    seq: u64,
    kind: EventKind,
}

/// Deterministic engine-level tallies, maintained inline by the event
/// loop (plain integers — no atomics, no clocks) so they are a pure
/// function of the simulation inputs. Harvested by the telemetry layer
/// *after* a run; the engine itself never reads them back.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineCounters {
    /// Total events dispatched ([`Simulator::step`] calls that popped).
    pub events: u64,
    /// Timer callbacks dispatched.
    pub timer_events: u64,
    /// Link serializations completed.
    pub txdone_events: u64,
    /// Propagation arrivals dispatched.
    pub arrival_events: u64,
    /// Packets offered to a link (one per hop entry).
    pub packets_offered: u64,
    /// Offers that started transmitting immediately.
    pub packets_tx_started: u64,
    /// Offers that entered a link queue.
    pub packets_queued: u64,
    /// Offers dropped at a full buffer (droptail/RED).
    pub packets_dropped: u64,
    /// Packets delivered to a destination endpoint.
    pub packets_delivered: u64,
    /// Endpoint commands applied (sends + timer arms).
    pub commands_applied: u64,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The discrete-event simulator.
///
/// # Examples
///
/// Build a one-link world with an echoing endpoint and run it:
///
/// ```
/// use tputpred_netsim::*;
/// use tputpred_netsim::link::LinkConfig;
///
/// struct Sink(u64);
/// impl Endpoint for Sink {
///     fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) { self.0 += 1; }
///     fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: u64) {}
/// }
/// struct Pulse { link: LinkId, dst: EndpointId }
/// impl Endpoint for Pulse {
///     fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) {}
///     fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
///         ctx.send(Route::direct(self.link), self.dst, 1500, Payload::Raw);
///     }
/// }
///
/// let mut sim = Simulator::new(42);
/// let link = sim.add_link(LinkConfig::new(10e6, Time::from_millis(5), 50));
/// let sink = sim.add_endpoint(Box::new(Sink(0)));
/// let pulse = sim.add_endpoint(Box::new(Pulse { link, dst: sink }));
/// sim.schedule_timer(pulse, 0, Time::ZERO);
/// sim.run_until(Time::from_secs(1));
/// assert_eq!(sim.link(link).stats().packets_out, 1);
/// ```
pub struct Simulator {
    now: Time,
    seq: u64,
    heap: BinaryHeap<Reverse<Scheduled>>,
    links: Vec<Link>,
    endpoints: Vec<Option<Box<dyn Endpoint>>>,
    rng: StdRng,
    scratch: Vec<Command>,
    counters: EngineCounters,
}

impl Simulator {
    /// Creates an empty simulation with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: Time::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            links: Vec::new(),
            endpoints: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            scratch: Vec::new(),
            counters: EngineCounters::default(),
        }
    }

    /// Adds a link; returns its id.
    pub fn add_link(&mut self, config: LinkConfig) -> LinkId {
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(config));
        id
    }

    /// Adds an endpoint; returns its id.
    pub fn add_endpoint(&mut self, endpoint: Box<dyn Endpoint>) -> EndpointId {
        let id = EndpointId(self.endpoints.len() as u32);
        self.endpoints.push(Some(endpoint));
        id
    }

    /// Read access to a link (its config and statistics).
    ///
    /// # Panics
    ///
    /// Panics on an id from another simulator.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events dispatched so far (engine-throughput benchmarks).
    pub fn events_processed(&self) -> u64 {
        self.counters.events
    }

    /// Deterministic engine-level tallies (events by kind, packet
    /// offer outcomes, commands applied).
    pub fn counters(&self) -> EngineCounters {
        self.counters
    }

    /// All links, in id order (telemetry aggregates per-link stats).
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Arms a timer on `endpoint` from outside the simulation (drivers use
    /// this to bootstrap: endpoints themselves can only arm timers from
    /// within callbacks).
    pub fn schedule_timer(&mut self, endpoint: EndpointId, token: u64, at: Time) {
        debug_assert!(at >= self.now, "timer in the past");
        self.push(at, EventKind::Timer { endpoint, token });
    }

    // lint:hot-path
    fn push(&mut self, at: Time, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        // lint:allow(hot-path-alloc): BinaryHeap retains capacity after pops (pooling: ROADMAP 1)
        self.heap.push(Reverse(Scheduled { at, seq, kind }));
    }

    /// Dispatches a single event. Returns `false` when the heap is empty.
    // lint:hot-path
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.heap.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.now, "event heap went backwards");
        self.now = ev.at;
        self.counters.events += 1;
        match ev.kind {
            EventKind::Timer { endpoint, token } => {
                self.counters.timer_events += 1;
                self.call_endpoint(endpoint, |ep, ctx| ep.on_timer(ctx, token));
            }
            EventKind::TxDone { link, packet } => {
                self.counters.txdone_events += 1;
                let l = &mut self.links[link.0 as usize];
                let next = l.finish_tx(&packet, self.now);
                let delay = l.delay();
                if let Some((next_pkt, done)) = next {
                    self.push(
                        done,
                        EventKind::TxDone {
                            link,
                            packet: next_pkt,
                        },
                    );
                }
                let mut sent = packet;
                sent.advance_hop();
                self.push(self.now + delay, EventKind::Arrival { packet: sent });
            }
            EventKind::Arrival { packet } => {
                self.counters.arrival_events += 1;
                self.route_packet(packet);
            }
        }
        true
    }

    /// Runs all events up to and including time `t`, then advances the
    /// clock to `t`.
    pub fn run_until(&mut self, t: Time) {
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.at > t {
                break;
            }
            self.step();
        }
        debug_assert!(self.now <= t);
        self.now = t;
    }

    /// Runs until the event heap drains (all traffic quiesces).
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    /// Offers `packet` to the next link on its route, or delivers it.
    // lint:hot-path
    fn route_packet(&mut self, packet: Packet) {
        match packet.next_hop() {
            Some(link_id) => {
                self.counters.packets_offered += 1;
                let link = &mut self.links[link_id.0 as usize];
                match link.offer(packet, self.now) {
                    Offer::StartTx => {
                        self.counters.packets_tx_started += 1;
                        let done = link.begin_tx(&packet, self.now);
                        self.push(
                            done,
                            EventKind::TxDone {
                                link: link_id,
                                packet,
                            },
                        );
                    }
                    Offer::Queued => {
                        self.counters.packets_queued += 1;
                    }
                    Offer::Dropped => {
                        self.counters.packets_dropped += 1;
                    }
                }
            }
            None => {
                self.counters.packets_delivered += 1;
                let dst = packet.dst;
                self.call_endpoint(dst, |ep, ctx| ep.on_packet(ctx, packet));
            }
        }
    }

    /// Invokes an endpoint callback with a fresh [`Ctx`], then applies the
    /// commands it issued.
    // lint:hot-path
    fn call_endpoint<F>(&mut self, id: EndpointId, f: F)
    where
        F: FnOnce(&mut dyn Endpoint, &mut Ctx<'_>),
    {
        let slot = id.0 as usize;
        let mut ep = self.endpoints[slot]
            .take()
            .unwrap_or_else(|| panic!("endpoint {slot} re-entered or missing"));
        let mut commands = std::mem::take(&mut self.scratch);
        {
            let mut ctx = Ctx {
                now: self.now,
                self_id: id,
                rng: &mut self.rng,
                commands: &mut commands,
            };
            f(ep.as_mut(), &mut ctx);
        }
        self.endpoints[slot] = Some(ep);
        self.counters.commands_applied += commands.len() as u64;
        for cmd in commands.drain(..) {
            match cmd {
                Command::Send(packet) => self.route_packet(packet),
                Command::SetTimer { token, at } => {
                    debug_assert!(at >= self.now, "timer in the past");
                    self.push(
                        at.max(self.now),
                        EventKind::Timer {
                            endpoint: id,
                            token,
                        },
                    );
                }
            }
        }
        self.scratch = commands;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Records arrival times of every packet it receives.
    struct Recorder {
        arrivals: Rc<RefCell<Vec<Time>>>,
    }
    impl Endpoint for Recorder {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _p: Packet) {
            self.arrivals.borrow_mut().push(ctx.now);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: u64) {}
    }

    /// Sends `count` packets back-to-back when its timer fires.
    struct Burst {
        route: Route,
        dst: EndpointId,
        count: u32,
        size: u32,
    }
    impl Endpoint for Burst {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
            for _ in 0..self.count {
                ctx.send(self.route, self.dst, self.size, Payload::Raw);
            }
        }
    }

    fn world(
        rate: f64,
        // lint:allow(units): whole-ms test grid; converted via Time::from_millis below
        delay_ms: u64,
        buffer: u32,
        burst: u32,
        size: u32,
    ) -> (Simulator, LinkId, Rc<RefCell<Vec<Time>>>) {
        let mut sim = Simulator::new(7);
        // lint:allow(units): conversion is explicit at the use site
        let link = sim.add_link(LinkConfig::new(rate, Time::from_millis(delay_ms), buffer));
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let sink = sim.add_endpoint(Box::new(Recorder {
            arrivals: Rc::clone(&arrivals),
        }));
        let src = sim.add_endpoint(Box::new(Burst {
            route: Route::direct(link),
            dst: sink,
            count: burst,
            size,
        }));
        sim.schedule_timer(src, 0, Time::ZERO);
        (sim, link, arrivals)
    }

    #[test]
    fn single_packet_arrives_after_tx_plus_propagation() {
        // 1500 B at 12 Mbps = 1 ms tx; +5 ms propagation = 6 ms.
        let (mut sim, _, arrivals) = world(12e6, 5, 50, 1, 1500);
        sim.run_until(Time::from_secs(1));
        assert_eq!(*arrivals.borrow(), vec![Time::from_millis(6)]);
    }

    #[test]
    fn back_to_back_packets_are_paced_by_serialization() {
        let (mut sim, _, arrivals) = world(12e6, 5, 50, 3, 1500);
        sim.run_until(Time::from_secs(1));
        let a = arrivals.borrow();
        assert_eq!(a.len(), 3);
        // Spaced exactly one serialization time (1 ms) apart.
        assert_eq!(a[1] - a[0], Time::from_millis(1));
        assert_eq!(a[2] - a[1], Time::from_millis(1));
    }

    #[test]
    fn droptail_loses_overflow_packets() {
        // Buffer holds two queued packets; burst of 5 → 1 in serializer,
        // 2 queued, 2 dropped.
        let (mut sim, link, arrivals) = world(12e6, 5, 2, 5, 1500);
        sim.run_until(Time::from_secs(1));
        assert_eq!(arrivals.borrow().len(), 3);
        assert_eq!(sim.link(link).stats().drops, 2);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sim = Simulator::new(1);
        sim.run_until(Time::from_secs(10));
        assert_eq!(sim.now(), Time::from_secs(10));
    }

    #[test]
    fn equal_time_events_dispatch_in_scheduling_order() {
        struct Logger {
            tag: u64,
            log: Rc<RefCell<Vec<u64>>>,
        }
        impl Endpoint for Logger {
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _p: Packet) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                self.log.borrow_mut().push(self.tag * 100 + token);
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(1);
        let a = sim.add_endpoint(Box::new(Logger {
            tag: 1,
            log: Rc::clone(&log),
        }));
        let b = sim.add_endpoint(Box::new(Logger {
            tag: 2,
            log: Rc::clone(&log),
        }));
        let t = Time::from_millis(5);
        sim.schedule_timer(b, 1, t);
        sim.schedule_timer(a, 2, t);
        sim.schedule_timer(b, 3, t);
        sim.run_until(Time::from_secs(1));
        assert_eq!(*log.borrow(), vec![201, 102, 203]);
    }

    #[test]
    fn multi_hop_route_traverses_both_links() {
        let mut sim = Simulator::new(1);
        let l1 = sim.add_link(LinkConfig::new(12e6, Time::from_millis(5), 50));
        let l2 = sim.add_link(LinkConfig::new(12e6, Time::from_millis(7), 50));
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let sink = sim.add_endpoint(Box::new(Recorder {
            arrivals: Rc::clone(&arrivals),
        }));
        let src = sim.add_endpoint(Box::new(Burst {
            route: Route::new(&[l1, l2]),
            dst: sink,
            count: 1,
            size: 1500,
        }));
        sim.schedule_timer(src, 0, Time::ZERO);
        sim.run_until(Time::from_secs(1));
        // 1 ms tx + 5 ms + 1 ms tx + 7 ms = 14 ms.
        assert_eq!(*arrivals.borrow(), vec![Time::from_millis(14)]);
        assert_eq!(sim.link(l1).stats().packets_out, 1);
        assert_eq!(sim.link(l2).stats().packets_out, 1);
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let run = |seed: u64| -> Vec<Time> {
            let (mut sim, _, arrivals) = world(12e6, 5, 2, 5, 1500);
            let _ = seed; // world is deterministic regardless; assert replay
            sim.run_until(Time::from_secs(1));
            let a = arrivals.borrow().clone();
            a
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn engine_counters_reconcile_with_link_stats() {
        // Burst of 5 into a 2-deep buffer: 1 starts tx, 2 queue, 2 drop.
        let (mut sim, link, arrivals) = world(12e6, 5, 2, 5, 1500);
        sim.run_to_quiescence();
        let c = sim.counters();
        assert_eq!(c.packets_offered, 5);
        assert_eq!(c.packets_tx_started, 1);
        assert_eq!(c.packets_queued, 2);
        assert_eq!(c.packets_dropped, 2);
        assert_eq!(c.packets_dropped, sim.link(link).stats().drops);
        assert_eq!(c.packets_delivered, arrivals.borrow().len() as u64);
        assert_eq!(c.txdone_events, sim.link(link).stats().packets_out);
        assert_eq!(
            c.events,
            c.timer_events + c.txdone_events + c.arrival_events
        );
        assert_eq!(c.events, sim.events_processed());
        // Replay: counters are part of the deterministic output.
        let (mut sim2, _, _) = world(12e6, 5, 2, 5, 1500);
        sim2.run_to_quiescence();
        assert_eq!(sim2.counters(), c);
    }

    #[test]
    fn quiescence_drains_all_events() {
        let (mut sim, link, arrivals) = world(12e6, 5, 50, 4, 1500);
        sim.run_to_quiescence();
        assert_eq!(arrivals.borrow().len(), 4);
        assert_eq!(sim.link(link).stats().packets_out, 4);
        assert!(!sim.step(), "heap is empty");
    }
}
