//! Cross-traffic generators, sinks, and the probe reflector.
//!
//! The paper's FB error analysis (§3.2–§3.4) hinges on what the *cross
//! traffic* at the bottleneck does: how close it drives utilization to
//! 100%, whether it is elastic (persistent TCP, which yields to the target
//! flow) or inelastic (open-loop, which does not), and how bursty it is.
//! This module provides the inelastic generators:
//!
//! * [`CbrSource`] — constant bit rate (smooth load),
//! * [`PoissonSource`] — Poisson packet arrivals (memoryless load),
//! * [`ParetoOnOffSource`] — heavy-tailed on periods with exponential off
//!   periods (bursty at many time scales).
//!
//! Elastic cross traffic is a persistent TCP flow from `tputpred-tcp`.
//!
//! Every generator consults a [`RateSchedule`] so the testbed can inject
//! level shifts and outlier bursts. All are [`Endpoint`]s driven by a
//! single self-rearming timer; drivers bootstrap them with
//! [`crate::Simulator::schedule_timer`] (token 0) at their start time.
//!
//! [`Sink`] counts delivered traffic; [`Reflector`] echoes probe packets
//! back to their sender (the far end of ping).

use crate::engine::{Ctx, Endpoint, EndpointId};
use crate::packet::{Packet, Payload, Route};
use crate::random;
use crate::schedule::{RateSchedule, ScheduleCursor};
use crate::time::Time;
use std::cell::RefCell;
use std::rc::Rc;

/// When a schedule silences a source (multiplier ≈ 0), how long it sleeps
/// before re-checking.
const IDLE_RECHECK: Time = Time::from_millis(50);

/// Parameters shared by all generators.
#[derive(Debug, Clone)]
pub struct SourceConfig {
    /// Links to traverse.
    pub route: Route,
    /// Receiving endpoint (usually a [`Sink`]).
    pub dst: EndpointId,
    /// Wire size of generated packets, bytes.
    pub packet_size: u32,
    /// Base rate in bits/s, before schedule modulation.
    pub base_rate_bps: f64,
    /// Load modulation over time.
    pub schedule: RateSchedule,
    /// Stop emitting at this time (the timer then stops re-arming).
    pub stop: Time,
}

impl SourceConfig {
    /// The schedule-modulated rate at `now`, through the caller's
    /// [`ScheduleCursor`] memo (bit-identical to an uncached lookup).
    // lint:hot-path
    fn effective_rate(&self, now: Time, cursor: &mut ScheduleCursor) -> f64 {
        self.base_rate_bps * self.schedule.multiplier_at_cached(now, cursor)
    }
}

/// Shared counters for sent traffic, readable by the driving test or
/// experiment after the run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TxCount {
    /// Packets emitted.
    pub packets: u64,
    /// Bytes emitted.
    pub bytes: u64,
}

/// Handle to a generator's counters.
pub type TxHandle = Rc<RefCell<TxCount>>;

/// Single-entry memo of [`Time::tx_time`] keyed on the exact
/// `(rate bits, size)` pair. Sources emit long runs of identically
/// sized packets at a schedule-piecewise-constant rate, so the key
/// almost always hits and the float round-trip in `tx_time` is skipped.
/// Pure memoization — a hit returns exactly the `Time` a fresh
/// computation would (`u32::MAX` marks the empty entry; no packet is
/// 4 GiB).
#[derive(Debug, Clone, Copy)]
pub struct GapMemo {
    rate_bits: u64,
    size: u32,
    gap: Time,
}

impl GapMemo {
    /// The empty memo (first call computes).
    pub const EMPTY: GapMemo = GapMemo {
        rate_bits: 0,
        size: u32::MAX,
        gap: Time::ZERO,
    };

    /// [`Time::tx_time`], memoized.
    // lint:hot-path
    pub fn tx_time(&mut self, size: u32, rate: f64) -> Time {
        let rate_bits = rate.to_bits();
        if self.size == size && self.rate_bits == rate_bits {
            return self.gap;
        }
        let gap = Time::tx_time(size, rate);
        *self = GapMemo {
            rate_bits,
            size,
            gap,
        };
        gap
    }
}

fn emit(ctx: &mut Ctx<'_>, cfg: &SourceConfig, counter: &TxHandle) {
    ctx.send(cfg.route, cfg.dst, cfg.packet_size, Payload::Raw);
    let mut c = counter.borrow_mut();
    c.packets += 1;
    c.bytes += cfg.packet_size as u64;
}

/// Constant-bit-rate source: one packet every `size·8/rate` seconds.
pub struct CbrSource {
    cfg: SourceConfig,
    counter: TxHandle,
    memo: GapMemo,
    cursor: ScheduleCursor,
}

impl CbrSource {
    /// Creates the source and a handle to its counters.
    pub fn new(cfg: SourceConfig) -> (Self, TxHandle) {
        let counter = TxHandle::default();
        (
            CbrSource {
                cfg,
                counter: Rc::clone(&counter),
                memo: GapMemo::EMPTY,
                cursor: ScheduleCursor::EMPTY,
            },
            counter,
        )
    }
}

impl Endpoint for CbrSource {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if ctx.now >= self.cfg.stop {
            return;
        }
        let rate = self.cfg.effective_rate(ctx.now, &mut self.cursor);
        if rate < 1.0 {
            ctx.set_timer_after(0, IDLE_RECHECK);
            return;
        }
        emit(ctx, &self.cfg, &self.counter);
        let gap = self.memo.tx_time(self.cfg.packet_size, rate);
        ctx.set_timer_after(0, gap);
    }
}

/// Poisson source: exponential interarrivals with the configured mean
/// rate.
pub struct PoissonSource {
    cfg: SourceConfig,
    counter: TxHandle,
    cursor: ScheduleCursor,
}

impl PoissonSource {
    /// Creates the source and a handle to its counters.
    pub fn new(cfg: SourceConfig) -> (Self, TxHandle) {
        let counter = TxHandle::default();
        (
            PoissonSource {
                cfg,
                counter: Rc::clone(&counter),
                cursor: ScheduleCursor::EMPTY,
            },
            counter,
        )
    }
}

impl Endpoint for PoissonSource {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if ctx.now >= self.cfg.stop {
            return;
        }
        let rate = self.cfg.effective_rate(ctx.now, &mut self.cursor);
        if rate < 1.0 {
            ctx.set_timer_after(0, IDLE_RECHECK);
            return;
        }
        emit(ctx, &self.cfg, &self.counter);
        let mean_gap = self.cfg.packet_size as f64 * 8.0 / rate;
        let gap = random::exponential(ctx.rng(), mean_gap);
        ctx.set_timer_after(0, Time::from_secs_f64(gap));
    }
}

/// Pareto on-off source: bursts whose lengths are Pareto-distributed
/// (heavy-tailed), separated by exponential silences. During a burst it
/// emits CBR at `peak` × the schedule multiplier; the configured
/// `base_rate_bps` is the *long-run average*, and the peak is
/// `base / duty_cycle`.
pub struct ParetoOnOffSource {
    cfg: SourceConfig,
    counter: TxHandle,
    memo: GapMemo,
    cursor: ScheduleCursor,
    /// Long-run fraction of time spent on, in (0, 1).
    duty_cycle: f64,
    /// Pareto shape for on-period lengths (1 < α < 2 gives the classic
    /// heavy tail).
    alpha: f64,
    /// Mean on-period length, seconds.
    mean_on: f64,
    state: OnOffState,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum OnOffState {
    Off,
    On { until: Time },
}

impl ParetoOnOffSource {
    /// Creates the source and a handle to its counters.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < duty_cycle < 1`, `alpha > 1`, `mean_on > 0`.
    pub fn new(cfg: SourceConfig, duty_cycle: f64, alpha: f64, mean_on: f64) -> (Self, TxHandle) {
        assert!(
            duty_cycle > 0.0 && duty_cycle < 1.0,
            "duty cycle {duty_cycle} outside (0, 1)"
        );
        assert!(alpha > 1.0, "pareto shape must exceed 1 for a finite mean");
        assert!(mean_on > 0.0, "mean on-period must be positive");
        let counter = TxHandle::default();
        (
            ParetoOnOffSource {
                cfg,
                counter: Rc::clone(&counter),
                memo: GapMemo::EMPTY,
                cursor: ScheduleCursor::EMPTY,
                duty_cycle,
                alpha,
                mean_on,
                state: OnOffState::Off,
            },
            counter,
        )
    }

    fn peak_rate(&mut self, now: Time) -> f64 {
        self.cfg.effective_rate(now, &mut self.cursor) / self.duty_cycle
    }
}

impl Endpoint for ParetoOnOffSource {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _packet: Packet) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        if ctx.now >= self.cfg.stop {
            return;
        }
        match self.state {
            OnOffState::Off => {
                // Begin an on-period.
                let xmin = random::pareto_scale_for_mean(self.alpha, self.mean_on);
                let on_len = random::pareto(ctx.rng(), self.alpha, xmin);
                self.state = OnOffState::On {
                    until: ctx.now + Time::from_secs_f64(on_len),
                };
                // Fall through to emit immediately.
                self.on_timer(ctx, 0);
            }
            OnOffState::On { until } => {
                if ctx.now >= until {
                    // Begin an off-period.
                    let mean_off = self.mean_on * (1.0 - self.duty_cycle) / self.duty_cycle;
                    let off_len = random::exponential(ctx.rng(), mean_off);
                    self.state = OnOffState::Off;
                    ctx.set_timer_after(0, Time::from_secs_f64(off_len));
                    return;
                }
                let rate = self.peak_rate(ctx.now);
                if rate < 1.0 {
                    ctx.set_timer_after(0, IDLE_RECHECK);
                    return;
                }
                emit(ctx, &self.cfg, &self.counter);
                let gap = self.memo.tx_time(self.cfg.packet_size, rate);
                ctx.set_timer_after(0, gap);
            }
        }
    }
}

/// Received-traffic counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RxCount {
    /// Packets delivered.
    pub packets: u64,
    /// Bytes delivered.
    pub bytes: u64,
}

/// Handle to a sink's counters.
pub type RxHandle = Rc<RefCell<RxCount>>;

/// Terminal endpoint that counts what reaches it.
pub struct Sink {
    counter: RxHandle,
}

impl Sink {
    /// Creates the sink and a handle to its counters.
    pub fn new() -> (Self, RxHandle) {
        let counter = RxHandle::default();
        (
            Sink {
                counter: Rc::clone(&counter),
            },
            counter,
        )
    }
}

impl Endpoint for Sink {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, packet: Packet) {
        let mut c = self.counter.borrow_mut();
        c.packets += 1;
        c.bytes += packet.size as u64;
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
}

/// Echoes probe packets back to their source over a configured reverse
/// route — the far end of a ping measurement. Non-probe packets are
/// counted and dropped (it also serves as a sink).
pub struct Reflector {
    reverse_route: Route,
    counter: RxHandle,
}

impl Reflector {
    /// Creates a reflector that replies over `reverse_route`.
    pub fn new(reverse_route: Route) -> (Self, RxHandle) {
        let counter = RxHandle::default();
        (
            Reflector {
                reverse_route,
                counter: Rc::clone(&counter),
            },
            counter,
        )
    }
}

impl Endpoint for Reflector {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, packet: Packet) {
        {
            let mut c = self.counter.borrow_mut();
            c.packets += 1;
            c.bytes += packet.size as u64;
        }
        if let Payload::Probe(meta) = packet.payload {
            if !meta.is_reply {
                let reply = Payload::Probe(crate::packet::ProbeMeta {
                    is_reply: true,
                    ..meta
                });
                ctx.send(self.reverse_route, packet.src, packet.size, reply);
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::link::LinkConfig;
    use crate::packet::ProbeMeta;

    fn fat_link(sim: &mut Simulator) -> crate::link::LinkId {
        sim.add_link(LinkConfig::new(100e6, Time::from_millis(5), 1000))
    }

    fn run_source<F>(make: F, secs: u64) -> (u64, u64)
    where
        F: FnOnce(SourceConfig) -> (Box<dyn Endpoint>, TxHandle),
    {
        let mut sim = Simulator::new(11);
        let link = fat_link(&mut sim);
        let (sink, rx) = Sink::new();
        let sink_id = sim.add_endpoint(Box::new(sink));
        let cfg = SourceConfig {
            route: Route::direct(link),
            dst: sink_id,
            packet_size: 1000,
            base_rate_bps: 1e6,
            schedule: RateSchedule::constant(1.0),
            stop: Time::from_secs(secs),
        };
        let (src, tx) = make(cfg);
        let src_id = sim.add_endpoint(src);
        sim.schedule_timer(src_id, 0, Time::ZERO);
        sim.run_until(Time::from_secs(secs + 1));
        let sent = tx.borrow().packets;
        let received = rx.borrow().packets;
        (sent, received)
    }

    #[test]
    fn cbr_emits_at_the_configured_rate() {
        // 1 Mbps of 1000-byte packets for 10 s = 1250 packets.
        let (sent, received) = run_source(
            |cfg| {
                let (s, h) = CbrSource::new(cfg);
                (Box::new(s), h)
            },
            10,
        );
        assert_eq!(sent, 1250);
        assert_eq!(received, sent, "fat link loses nothing");
    }

    #[test]
    fn poisson_averages_the_configured_rate() {
        let (sent, _) = run_source(
            |cfg| {
                let (s, h) = PoissonSource::new(cfg);
                (Box::new(s), h)
            },
            100,
        );
        let expected = 12_500.0;
        let err = (sent as f64 - expected).abs() / expected;
        assert!(err < 0.05, "sent {sent}, expected ≈{expected}");
    }

    #[test]
    fn pareto_on_off_averages_the_configured_rate() {
        let (sent, _) = run_source(
            |cfg| {
                let (s, h) = ParetoOnOffSource::new(cfg, 0.3, 1.9, 0.5);
                (Box::new(s), h)
            },
            1200,
        );
        let expected = 150_000.0;
        let err = (sent as f64 - expected).abs() / expected;
        assert!(err < 0.15, "sent {sent}, expected ≈{expected}");
    }

    #[test]
    fn schedule_shift_changes_emission_rate() {
        let mut sim = Simulator::new(3);
        let link = fat_link(&mut sim);
        let (sink, _rx) = Sink::new();
        let sink_id = sim.add_endpoint(Box::new(sink));
        let schedule = RateSchedule::constant(1.0).with_shift(Time::from_secs(10), 3.0);
        let cfg = SourceConfig {
            route: Route::direct(link),
            dst: sink_id,
            packet_size: 1000,
            base_rate_bps: 1e6,
            schedule,
            stop: Time::from_secs(20),
        };
        let (src, tx) = CbrSource::new(cfg);
        let src_id = sim.add_endpoint(Box::new(src));
        sim.schedule_timer(src_id, 0, Time::ZERO);
        sim.run_until(Time::from_secs(10));
        let first_half = tx.borrow().packets;
        sim.run_until(Time::from_secs(20));
        let second_half = tx.borrow().packets - first_half;
        assert!(
            second_half > 2 * first_half,
            "after the 3× shift: {first_half} then {second_half}"
        );
    }

    #[test]
    fn zero_multiplier_silences_then_resumes() {
        let mut sim = Simulator::new(3);
        let link = fat_link(&mut sim);
        let (sink, rx) = Sink::new();
        let sink_id = sim.add_endpoint(Box::new(sink));
        let schedule =
            RateSchedule::constant(1.0).with_burst(Time::from_secs(2), Time::from_secs(4), 0.0);
        let cfg = SourceConfig {
            route: Route::direct(link),
            dst: sink_id,
            packet_size: 1000,
            base_rate_bps: 1e6,
            schedule,
            stop: Time::from_secs(6),
        };
        let (src, tx) = CbrSource::new(cfg);
        let src_id = sim.add_endpoint(Box::new(src));
        sim.schedule_timer(src_id, 0, Time::ZERO);
        sim.run_until(Time::from_secs(7));
        // ~2 s silent out of 6 → roughly 4/6 of the full-rate count.
        let sent = tx.borrow().packets;
        assert!(
            (400..600).contains(&sent),
            "sent {sent}, expected ≈500 (2 s silenced)"
        );
        assert_eq!(rx.borrow().packets, sent);
    }

    #[test]
    fn reflector_echoes_probes_with_reply_flag() {
        struct Prober {
            route: Route,
            dst: EndpointId,
            replies: Rc<RefCell<Vec<ProbeMeta>>>,
        }
        impl Endpoint for Prober {
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, packet: Packet) {
                if let Payload::Probe(m) = packet.payload {
                    self.replies.borrow_mut().push(m);
                }
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
                let meta = ProbeMeta {
                    seq: 42,
                    stream: 0,
                    sent_at: ctx.now,
                    is_reply: false,
                };
                ctx.send(self.route, self.dst, 41, Payload::Probe(meta));
            }
        }

        let mut sim = Simulator::new(5);
        let fwd = fat_link(&mut sim);
        let rev = fat_link(&mut sim);
        let (refl, _cnt) = Reflector::new(Route::direct(rev));
        let refl_id = sim.add_endpoint(Box::new(refl));
        let replies = Rc::new(RefCell::new(Vec::new()));
        let prober = Prober {
            route: Route::direct(fwd),
            dst: refl_id,
            replies: Rc::clone(&replies),
        };
        let prober_id = sim.add_endpoint(Box::new(prober));
        sim.schedule_timer(prober_id, 0, Time::ZERO);
        sim.run_until(Time::from_secs(1));
        let replies = replies.borrow();
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].seq, 42);
        assert!(replies[0].is_reply);
        assert_eq!(replies[0].sent_at, Time::ZERO, "echo preserves timestamp");
    }

    #[test]
    fn sources_stop_at_their_deadline() {
        let (sent_10, _) = run_source(
            |cfg| {
                let (s, h) = CbrSource::new(cfg);
                (Box::new(s), h)
            },
            10,
        );
        let (sent_20, _) = run_source(
            |cfg| {
                let (s, h) = CbrSource::new(cfg);
                (Box::new(s), h)
            },
            20,
        );
        assert!((sent_20 as f64 / sent_10 as f64 - 2.0).abs() < 0.01);
    }
}
