//! Packets and the shared payload vocabulary.
//!
//! Packets are *source-routed*: the sender stamps the sequence of links the
//! packet traverses (a [`Route`]) and the destination endpoint. The engine
//! follows the route hop by hop; there are no routing tables — the paper's
//! experiments are per-path, and a path is exactly a route.
//!
//! The engine never interprets [`Payload`]; the enum exists so that TCP
//! endpoints, measurement probes, and cross-traffic sources (which live in
//! other crates) can coexist in one simulation with one packet type.

use crate::engine::EndpointId;
use crate::link::LinkId;
use crate::time::Time;

/// Maximum hops a route may carry. The testbed's paths are 1–2 links;
/// 4 leaves room for richer topologies (e.g. shared access + bottleneck +
/// reverse congestion experiments).
pub const MAX_HOPS: usize = 4;

/// A fixed-capacity sequence of links a packet traverses, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    hops: [LinkId; MAX_HOPS],
    len: u8,
}

impl Route {
    /// A route over the given links.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_HOPS`] links are given or the route is
    /// empty (an empty route would deliver instantaneously, which is never
    /// what a network experiment means).
    pub fn new(links: &[LinkId]) -> Self {
        assert!(!links.is_empty(), "empty route");
        assert!(links.len() <= MAX_HOPS, "route longer than {MAX_HOPS} hops");
        let mut hops = [LinkId(0); MAX_HOPS];
        hops[..links.len()].copy_from_slice(links);
        Route {
            hops,
            len: links.len() as u8,
        }
    }

    /// Single-link route.
    pub fn direct(link: LinkId) -> Self {
        Route::new(&[link])
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Routes are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `i`-th hop.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn hop(&self, i: usize) -> LinkId {
        assert!(i < self.len(), "hop {i} out of range");
        self.hops[i]
    }
}

/// TCP segment metadata carried by data and ACK packets.
///
/// Interpreted only by the TCP endpoints in `tputpred-tcp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpMeta {
    /// First byte sequence number of this segment (data packets).
    pub seq: u64,
    /// Bytes of payload in this segment (data packets).
    pub len: u32,
    /// Cumulative ACK: next byte expected by the receiver (ACK packets).
    pub ack: u64,
    /// True for pure ACKs.
    pub is_ack: bool,
    /// True when this segment is a retransmission (Karn's algorithm:
    /// no RTT sample from retransmitted segments).
    pub retx: bool,
    /// Departure timestamp of the *data* this packet acknowledges or
    /// carries, echoed by the receiver so the sender can sample RTT.
    pub echo: Time,
}

/// Probe metadata carried by measurement packets (ping, pathload trains).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProbeMeta {
    /// Probe sequence number within its stream.
    pub seq: u64,
    /// Stream (train) identifier, for pathload-style multi-train probing.
    pub stream: u32,
    /// Departure timestamp at the prober.
    pub sent_at: Time,
    /// True for the reply direction of an echo probe.
    pub is_reply: bool,
}

/// What a packet carries. The engine treats this as opaque freight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    /// TCP data or ACK.
    Tcp(TcpMeta),
    /// Measurement probe.
    Probe(ProbeMeta),
    /// Cross-traffic filler with no protocol semantics.
    Raw,
}

/// A packet in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Wire size in bytes (headers included) — what queues and link
    /// serializers account.
    pub size: u32,
    /// Sending endpoint.
    pub src: EndpointId,
    /// Final destination endpoint.
    pub dst: EndpointId,
    /// The links still to traverse.
    pub route: Route,
    /// Index of the next hop within `route`.
    pub hop_index: u8,
    /// Opaque freight.
    pub payload: Payload,
}

impl Packet {
    /// The next link this packet must enter, or `None` if the route is
    /// exhausted (deliver to `dst`).
    pub fn next_hop(&self) -> Option<LinkId> {
        if (self.hop_index as usize) < self.route.len() {
            Some(self.route.hop(self.hop_index as usize))
        } else {
            None
        }
    }

    /// Advances past the current hop.
    pub fn advance_hop(&mut self) {
        debug_assert!((self.hop_index as usize) < self.route.len());
        self.hop_index += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(route: Route) -> Packet {
        Packet {
            size: 1500,
            src: EndpointId(0),
            dst: EndpointId(1),
            route,
            hop_index: 0,
            payload: Payload::Raw,
        }
    }

    #[test]
    fn route_iterates_hops_in_order() {
        let r = Route::new(&[LinkId(3), LinkId(7)]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.hop(0), LinkId(3));
        assert_eq!(r.hop(1), LinkId(7));
    }

    #[test]
    #[should_panic(expected = "empty route")]
    fn empty_route_rejected() {
        let _ = Route::new(&[]);
    }

    #[test]
    #[should_panic(expected = "longer than")]
    fn oversized_route_rejected() {
        let links = [LinkId(0); MAX_HOPS + 1];
        let _ = Route::new(&links);
    }

    #[test]
    fn packet_walks_its_route() {
        let mut p = pkt(Route::new(&[LinkId(1), LinkId(2)]));
        assert_eq!(p.next_hop(), Some(LinkId(1)));
        p.advance_hop();
        assert_eq!(p.next_hop(), Some(LinkId(2)));
        p.advance_hop();
        assert_eq!(p.next_hop(), None);
    }

    #[test]
    fn direct_route_has_one_hop() {
        let p = pkt(Route::direct(LinkId(9)));
        assert_eq!(p.route.len(), 1);
        assert_eq!(p.next_hop(), Some(LinkId(9)));
    }
}
