//! The near-future timer wheel: bucketed slots plus an overflow heap
//! (DESIGN.md §14).
//!
//! [`TimerWheel`] is the engine's schedule for timer events. Pending
//! timers within the wheel horizon (`SLOTS * SLOT_NS` ≈ 1.07 s of
//! simulated time) live in circular per-slot buckets; timers beyond the
//! horizon spill to a small overflow [`BinaryHeap`] and migrate into
//! slots as the horizon advances past them. Dispatch order is **exactly**
//! ascending `(at, seq)` — bit-identical to the global binary heap this
//! structure replaced: a slot is extracted into a sorted batch when it
//! comes due, and entries scheduled into the already-extracted window
//! are merge-inserted at their `(at, seq)` position, so same-timestamp
//! FIFO ties resolve by scheduling order everywhere.
//!
//! Why a wheel: most engine timers (source inter-packet gaps, ping
//! intervals, RTO re-arms) land well inside the horizon, so `push` is an
//! O(1) bucket append and `pop` is an O(1) batch read; the heap's
//! per-event `O(log n)` sift — and its 64-byte element moves — vanish
//! from the hot path. The structure is deterministic by construction:
//! no wall clock, no RNG, no hash iteration; its state is a pure
//! function of the push/pop sequence.
//!
//! # Contract
//!
//! * `seq` values are unique and increase with scheduling order (the
//!   engine's global event counter).
//! * Entries should satisfy `at >= now` (the engine clamps past-due
//!   timers — see `Simulator::schedule_timer`); a violating entry is
//!   not lost or reordered against pending entries — it is placed in
//!   the current slot and dispatched as early as possible, still in
//!   `(at, seq)` order among what remains.
//! * `now` passed to [`TimerWheel::peek_key`]/[`TimerWheel::pop`] is
//!   monotonic and never exceeds the `at` of any pending entry (true
//!   when the caller always dispatches the globally earliest event).

use crate::engine::EndpointId;
use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Width of one wheel slot: 2^18 ns ≈ 262 µs.
pub const SLOT_NS: u64 = 1 << 18;

/// Number of slots: 2^12, for a wheel horizon of `SLOTS * SLOT_NS`
/// = 2^30 ns ≈ 1.07 s beyond the wheel's current position.
pub const SLOTS: usize = 1 << 12;

/// Occupancy bitmap words (64 slots per word).
const WORDS: usize = SLOTS / 64;

/// A pending timer: fires [`crate::Endpoint::on_timer`] with `token` on
/// `endpoint` at time `at`; `seq` is the engine-global scheduling
/// sequence number that breaks same-timestamp ties FIFO.
#[derive(Debug, Clone, Copy)]
pub struct TimerEntry {
    /// Absolute fire time.
    pub at: Time,
    /// Global scheduling sequence number (unique, increasing).
    pub seq: u64,
    /// The endpoint whose `on_timer` fires.
    pub endpoint: EndpointId,
    /// Opaque token handed back to the endpoint.
    pub token: u64,
}

impl TimerEntry {
    /// The total dispatch-order key.
    fn key(&self) -> (Time, u64) {
        (self.at, self.seq)
    }
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Deterministic wheel tallies: how many timers took the fast bucketed
/// path, how many spilled past the horizon, and how many spills were
/// later migrated back in. Plain integers maintained inline — a pure
/// function of the push/pop sequence, merged into
/// `tputpred_netsim::EngineCounters` by the engine.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WheelCounters {
    /// Entries placed into near-future slots or the live batch
    /// (migrations from the overflow heap count again here).
    pub wheel_scheduled: u64,
    /// Entries that spilled to the overflow heap (beyond the horizon at
    /// scheduling time).
    pub overflow_scheduled: u64,
    /// Overflow entries migrated into slots as the horizon advanced.
    pub overflow_migrated: u64,
}

/// The timer wheel. See the module docs for the design and contract.
#[derive(Debug)]
pub struct TimerWheel {
    /// Circular slot buckets, unsorted; index = absolute slot % SLOTS.
    slots: Vec<Vec<TimerEntry>>,
    /// One bit per slot: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// The extracted current-slot batch, sorted ascending by `(at, seq)`
    /// and consumed front-to-back via `batch_pos`.
    batch: Vec<TimerEntry>,
    batch_pos: usize,
    /// Exclusive end of the extracted window: pushes with `at` before
    /// this merge into `batch`. Zero until the first extraction.
    batch_end_ns: u64,
    /// Absolute slot index of the wheel's current position; only grows.
    cur_slot: u64,
    /// Far-horizon spill, ordered by `(at, seq)`.
    overflow: BinaryHeap<Reverse<TimerEntry>>,
    /// Pending entries across slots, batch, and overflow.
    len: usize,
    counters: WheelCounters,
}

impl Default for TimerWheel {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl TimerWheel {
    /// An empty wheel positioned at time zero.
    pub fn new() -> Self {
        TimerWheel {
            slots: vec![Vec::new(); SLOTS],
            occupied: [0; WORDS],
            batch: Vec::new(),
            batch_pos: 0,
            batch_end_ns: 0,
            cur_slot: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            counters: WheelCounters::default(),
        }
    }

    /// Pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Deterministic scheduling tallies.
    pub fn counters(&self) -> WheelCounters {
        self.counters
    }

    /// Schedules `entry`; `now` is the caller's current simulated time
    /// (see the module contract).
    // lint:hot-path
    pub fn push(&mut self, entry: TimerEntry, now: Time) {
        self.len += 1;
        if entry.at.as_nanos() < self.batch_end_ns {
            // The entry lands inside the already-extracted window: merge
            // it into the live batch at its (at, seq) position so the
            // FIFO tie-break against still-pending entries is exact.
            let i = self.batch_pos
                + self.batch[self.batch_pos..].partition_point(|e| e.key() < entry.key());
            // lint:allow(hot-path-alloc): batch retains capacity; insertion is bounded by one slot's occupancy
            self.batch.insert(i, entry);
            self.counters.wheel_scheduled += 1;
            return;
        }
        self.cur_slot = self.cur_slot.max(now.as_nanos() / SLOT_NS);
        self.insert_slot(entry);
    }

    /// Places `entry` into its slot bucket, or spills it to the
    /// overflow heap when it lies beyond the wheel horizon.
    // lint:hot-path
    fn insert_slot(&mut self, entry: TimerEntry) {
        // A (clamped) past-due entry goes into the current slot; the
        // batch sort still dispatches it in exact (at, seq) order.
        let abs = (entry.at.as_nanos() / SLOT_NS).max(self.cur_slot);
        if abs >= self.cur_slot + SLOTS as u64 {
            self.counters.overflow_scheduled += 1;
            // lint:allow(hot-path-alloc): rare far-horizon spill; the heap retains capacity across pops
            self.overflow.push(Reverse(entry));
            return;
        }
        self.counters.wheel_scheduled += 1;
        let idx = (abs % SLOTS as u64) as usize;
        self.occupied[idx / 64] |= 1u64 << (idx % 64);
        // lint:allow(hot-path-alloc): slot buckets retain capacity and are pooled across traces (EnginePool)
        self.slots[idx].push(entry);
    }

    /// The `(at, seq)` key of the earliest pending entry, extracting the
    /// next due slot if the current batch is exhausted.
    // lint:hot-path
    pub fn peek_key(&mut self, now: Time) -> Option<(Time, u64)> {
        if self.batch_pos == self.batch.len() && !self.advance(now) {
            return None;
        }
        let e = &self.batch[self.batch_pos];
        Some((e.at, e.seq))
    }

    /// Removes and returns the earliest pending entry.
    // lint:hot-path
    pub fn pop(&mut self, now: Time) -> Option<TimerEntry> {
        self.peek_key(now)?;
        self.pop_head()
    }

    /// Removes the entry a preceding [`Self::peek_key`] resolved,
    /// skipping the advance check — the fast path for a dispatcher that
    /// has already peeked this event. Returns `None` if the live batch
    /// is exhausted (no peek since the last pop).
    // lint:hot-path
    pub fn pop_head(&mut self) -> Option<TimerEntry> {
        let e = *self.batch.get(self.batch_pos)?;
        self.batch_pos += 1;
        self.len -= 1;
        Some(e)
    }

    /// Refills the batch from the next occupied slot. Returns `false`
    /// when nothing is pending anywhere.
    fn advance(&mut self, now: Time) -> bool {
        debug_assert!(self.batch_pos == self.batch.len(), "batch not consumed");
        if self.len == 0 {
            return false;
        }
        self.cur_slot = self.cur_slot.max(now.as_nanos() / SLOT_NS);
        loop {
            self.migrate_overflow();
            if let Some(abs) = self.next_occupied() {
                self.extract(abs);
                return true;
            }
            // All slots empty: everything pending sits past the horizon.
            // Jump the wheel to the overflow minimum and pull it in.
            match self.overflow.peek() {
                Some(Reverse(e)) => self.cur_slot = e.at.as_nanos() / SLOT_NS,
                None => return false,
            }
        }
    }

    /// Moves overflow entries that now fall within the horizon into
    /// their slots.
    fn migrate_overflow(&mut self) {
        while let Some(Reverse(head)) = self.overflow.peek() {
            if head.at.as_nanos() / SLOT_NS >= self.cur_slot + SLOTS as u64 {
                return;
            }
            let Some(Reverse(e)) = self.overflow.pop() else {
                return;
            };
            self.counters.overflow_migrated += 1;
            self.insert_slot(e);
        }
    }

    /// The first occupied absolute slot in `[cur_slot, cur_slot+SLOTS)`,
    /// found by scanning the occupancy bitmap.
    fn next_occupied(&self) -> Option<u64> {
        let start = (self.cur_slot % SLOTS as u64) as usize;
        let mut word = start / 64;
        let mut bit = start % 64;
        let mut scanned = 0usize;
        while scanned < SLOTS {
            let w = self.occupied[word] >> bit;
            if w != 0 {
                let dist = scanned + w.trailing_zeros() as usize;
                return Some(self.cur_slot + dist as u64);
            }
            scanned += 64 - bit;
            bit = 0;
            word = (word + 1) % WORDS;
        }
        None
    }

    /// Extracts slot `abs` into the sorted batch and advances the wheel
    /// position to it. The entries are moved out by `append` so every
    /// bucket keeps its own buffer: capacities converge to each slot's
    /// high-water mark and then stop growing (the steady state
    /// `EnginePool` pins), instead of drifting as buffers would if
    /// batch and slot storage were swapped.
    fn extract(&mut self, abs: u64) {
        let idx = (abs % SLOTS as u64) as usize;
        self.occupied[idx / 64] &= !(1u64 << (idx % 64));
        self.batch.clear();
        self.batch_pos = 0;
        self.batch.append(&mut self.slots[idx]);
        self.batch.sort_unstable_by_key(TimerEntry::key);
        // Saturating: a slot near u64::MAX ns has no representable end,
        // so later pushes simply take the slot path again.
        self.batch_end_ns = (abs + 1).saturating_mul(SLOT_NS);
        self.cur_slot = abs;
    }

    /// Empties the wheel in place, retaining every buffer's capacity
    /// (the pooling point of `EnginePool`), and zeroes the counters.
    pub fn clear(&mut self) {
        for bucket in &mut self.slots {
            bucket.clear();
        }
        self.occupied = [0; WORDS];
        self.batch.clear();
        self.batch_pos = 0;
        self.batch_end_ns = 0;
        self.cur_slot = 0;
        self.overflow.clear();
        self.len = 0;
        self.counters = WheelCounters::default();
    }

    /// Retained capacities `(slot buckets total, batch, overflow)` —
    /// what the steady-state pooling tests assert on.
    pub fn capacity_profile(&self) -> (usize, usize, usize) {
        let slots: usize = self.slots.iter().map(Vec::capacity).sum();
        (slots, self.batch.capacity(), self.overflow.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at: Time, seq: u64) -> TimerEntry {
        TimerEntry {
            at,
            seq,
            endpoint: EndpointId(0),
            token: seq,
        }
    }

    /// Drains the wheel fully, tracking `now` as the last popped time.
    fn drain(w: &mut TimerWheel) -> Vec<(u64, u64)> {
        let mut now = Time::ZERO;
        let mut out = Vec::new();
        while let Some(e) = w.pop(now) {
            now = now.max(e.at);
            out.push((e.at.as_nanos(), e.seq));
        }
        out
    }

    #[test]
    fn pops_in_at_then_seq_order() {
        let mut w = TimerWheel::new();
        w.push(entry(Time::from_micros(500), 2), Time::ZERO);
        w.push(entry(Time::from_micros(100), 3), Time::ZERO);
        w.push(entry(Time::from_micros(500), 1), Time::ZERO);
        assert_eq!(w.len(), 3);
        assert_eq!(
            drain(&mut w),
            vec![(100_000, 3), (500_000, 1), (500_000, 2)]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn same_slot_ties_resolve_fifo() {
        let mut w = TimerWheel::new();
        let t = Time::from_nanos(SLOT_NS / 2);
        for seq in 0..10 {
            w.push(entry(t, seq), Time::ZERO);
        }
        let popped = drain(&mut w);
        assert_eq!(popped.len(), 10);
        assert!(popped.windows(2).all(|p| p[0].1 < p[1].1), "{popped:?}");
    }

    #[test]
    fn beyond_horizon_entries_spill_and_migrate_back() {
        let mut w = TimerWheel::new();
        let horizon = SLOT_NS * SLOTS as u64;
        // One inside, one exactly at the horizon edge, one far beyond.
        w.push(entry(Time::from_nanos(horizon - 1), 0), Time::ZERO);
        w.push(entry(Time::from_nanos(horizon), 1), Time::ZERO);
        w.push(entry(Time::from_nanos(3 * horizon), 2), Time::ZERO);
        let c = w.counters();
        assert_eq!(c.wheel_scheduled, 1);
        assert_eq!(c.overflow_scheduled, 2);
        assert_eq!(
            drain(&mut w),
            vec![(horizon - 1, 0), (horizon, 1), (3 * horizon, 2)]
        );
        assert_eq!(w.counters().overflow_migrated, 2);
    }

    #[test]
    fn push_into_extracted_window_keeps_exact_order() {
        let mut w = TimerWheel::new();
        let t = Time::from_nanos(100);
        w.push(entry(t, 0), Time::ZERO);
        w.push(entry(Time::from_nanos(200), 1), Time::ZERO);
        // Popping seq 0 extracts the slot containing both entries.
        assert_eq!(w.pop(Time::ZERO).map(|e| e.seq), Some(0));
        // A later push at the same 200 ns timestamp must dispatch after
        // seq 1 (FIFO), and one at 150 ns must dispatch before it.
        w.push(entry(Time::from_nanos(200), 2), t);
        w.push(entry(Time::from_nanos(150), 3), t);
        assert_eq!(drain(&mut w), vec![(150, 3), (200, 1), (200, 2)]);
    }

    #[test]
    fn past_due_entry_dispatches_immediately_without_reordering() {
        let mut w = TimerWheel::new();
        let now = Time::from_millis(10);
        w.push(entry(Time::from_millis(12), 0), now);
        // Contract violation (at < now): still dispatched, first.
        w.push(entry(Time::from_millis(3), 1), now);
        let popped: Vec<u64> = std::iter::from_fn(|| w.pop(now).map(|e| e.seq)).collect();
        assert_eq!(popped, vec![1, 0]);
    }

    #[test]
    fn clear_retains_capacity_and_resets_state() {
        let mut w = TimerWheel::new();
        for seq in 0..100 {
            let at = Time::from_nanos(seq * SLOT_NS * 7 + 13);
            w.push(entry(at, seq), Time::ZERO);
        }
        let _ = w.pop(Time::ZERO);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.counters(), WheelCounters::default());
        let (slot_cap, _, _) = w.capacity_profile();
        assert!(slot_cap > 0, "cleared buckets keep their buffers");
        // And the wheel is fully usable from time zero again.
        w.push(entry(Time::from_nanos(5), 9), Time::ZERO);
        assert_eq!(drain(&mut w), vec![(5, 9)]);
    }

    #[test]
    fn interleaved_push_pop_across_quiet_gaps() {
        // Exercise the empty-wheel jump: pop, long quiet gap, push far
        // ahead relative to the new now, pop again.
        let mut w = TimerWheel::new();
        w.push(entry(Time::from_secs(1), 0), Time::ZERO);
        assert_eq!(w.pop(Time::ZERO).map(|e| e.seq), Some(0));
        let now = Time::from_secs(1);
        w.push(entry(Time::from_secs(600), 1), now);
        assert_eq!(w.peek_key(now), Some((Time::from_secs(600), 1)));
        assert_eq!(w.pop(now).map(|e| e.seq), Some(1));
        assert!(w.pop(Time::from_secs(600)).is_none());
    }
}
