//! Unidirectional links with finite droptail FIFO queues.
//!
//! A link models the two delays of store-and-forward networking:
//! *serialization* (size/rate, one packet at a time — this is where
//! queueing happens) and *propagation* (constant). The buffer is counted
//! in **packets** and drops from the tail — the droptail model of ns2
//! (which the paper's own simulations used) and of most router line
//! cards. Packet-count admission matters for the reproduction: a 41-byte
//! ping probe must share loss fate with 1500-byte data packets at a full
//! queue, or congested paths would never show the probe-visible loss the
//! paper's lossy-path analysis (§4.2) is built on. §3.4 of the paper
//! turns on exactly these mechanics: whether a TCP flow can saturate the
//! avail-bw depends on the buffer size `B` at the bottleneck.
//!
//! Links also keep the accounting the experiments need: bytes and packets
//! forwarded, drops, cumulative busy time (→ utilization → ground-truth
//! avail-bw), and queueing-delay statistics.

use crate::packet::Packet;
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use tputpred_stats::Summary;

/// Active queue management at the link.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Aqm {
    /// Tail drop when the packet buffer is full (ns2's DropTail; the
    /// paper-era default and the testbed's).
    #[default]
    DropTail,
    /// Random Early Detection (Floyd & Jacobson 1993, as in ns2): an
    /// EWMA of the queue length drives an early-drop probability ramp
    /// between `min_th` and `max_th` packets; above `max_th` everything
    /// drops. Spreads TCP's losses over time instead of clustering them
    /// at buffer overflow — `abl_red` measures what that does to
    /// prediction.
    Red {
        /// Early-drop onset, packets (ns2 default ≈ 5).
        min_th: f64,
        /// Forced-drop threshold, packets (ns2 default ≈ 15).
        max_th: f64,
        /// Maximum early-drop probability at `max_th` (ns2: 0.02–0.1).
        max_p: f64,
        /// Queue-average weight (ns2: 0.002).
        weight: f64,
    },
}

impl Aqm {
    /// ns2-flavoured RED defaults scaled to a buffer of `buffer_packets`.
    pub fn red_for_buffer(buffer_packets: u32) -> Aqm {
        let max_th = (buffer_packets as f64 * 0.8).max(3.0);
        Aqm::Red {
            min_th: (max_th / 3.0).max(1.0),
            max_th,
            max_p: 0.1,
            weight: 0.002,
        }
    }
}

/// Identifies a link within a [`crate::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// Static link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Transmission rate, bits per second.
    pub rate_bps: f64,
    /// One-way propagation delay.
    pub delay: Time,
    /// Queue capacity in packets (ns2-style). The packet being
    /// serialized does not count against the buffer.
    pub buffer_packets: u32,
    /// Queue management discipline.
    pub aqm: Aqm,
}

impl LinkConfig {
    /// A convenience constructor.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive rate or zero buffer.
    pub fn new(rate_bps: f64, delay: Time, buffer_packets: u32) -> Self {
        assert!(rate_bps > 0.0, "link rate must be positive");
        assert!(buffer_packets > 0, "link buffer must be positive");
        LinkConfig {
            rate_bps,
            delay,
            buffer_packets,
            aqm: Aqm::DropTail,
        }
    }

    /// The same link with RED queue management (ns2-flavoured parameters
    /// scaled to the buffer).
    pub fn with_red(mut self) -> Self {
        self.aqm = Aqm::red_for_buffer(self.buffer_packets);
        self
    }

    /// The bandwidth-delay product of this link in bytes, a natural
    /// buffer-sizing yardstick (§3.4; Appenzeller et al.).
    pub fn bdp_bytes(&self, rtt: Time) -> u32 {
        (self.rate_bps * rtt.as_secs_f64() / 8.0) as u32
    }

    /// The bandwidth-delay product expressed in packets of `pkt_bytes`
    /// each (at least 2) — the usual way to size a droptail buffer
    /// relative to the path.
    pub fn bdp_packets(rate_bps: f64, rtt: Time, pkt_bytes: u32) -> u32 {
        ((rate_bps * rtt.as_secs_f64() / 8.0 / pkt_bytes as f64) as u32).max(2)
    }
}

/// Counters a link accumulates while forwarding.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkStats {
    /// Packets that completed serialization.
    pub packets_out: u64,
    /// Bytes that completed serialization.
    pub bytes_out: u64,
    /// Packets dropped at the tail of the full buffer.
    pub drops: u64,
    /// Packets offered to the link (enqueued + dropped).
    pub offered: u64,
    /// Total time the serializer was busy.
    pub busy: Time,
    /// Queueing delay (enqueue → start of serialization) statistics.
    pub queue_delay: Summary,
}

impl LinkStats {
    /// Serializer utilization over an elapsed interval.
    pub fn utilization(&self, elapsed: Time) -> f64 {
        if elapsed == Time::ZERO {
            0.0
        } else {
            self.busy.as_secs_f64() / elapsed.as_secs_f64()
        }
    }

    /// Fraction of offered packets that were dropped.
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.drops as f64 / self.offered as f64
        }
    }
}

/// A queued packet with its enqueue timestamp (for queue-delay stats).
#[derive(Debug, Clone)]
struct Queued {
    packet: Packet,
    enqueued_at: Time,
}

/// The runtime state of a link. Owned and driven by the
/// [`crate::Simulator`]; exposed for inspection.
#[derive(Debug)]
pub struct Link {
    config: LinkConfig,
    queue: VecDeque<Queued>,
    queued_bytes: u32,
    /// Whether a packet is currently being serialized.
    busy: bool,
    /// RED state: EWMA of the queue length, and a deterministic counter
    /// standing in for ns2's uniform variable (keeps the simulation a
    /// pure function of its inputs — no RNG plumbed into links).
    red_avg: f64,
    red_count: u64,
    /// Serialization time of the packet currently in the serializer —
    /// saves `finish_tx` recomputing the value `begin_tx` produced.
    cur_tx: Time,
    /// Move-to-front memo of [`Time::tx_time`] by packet size: the rate
    /// is fixed per link and traffic uses a handful of sizes (MSS data,
    /// 40 B ACKs, 41 B probes), so this skips the float round-trip on
    /// almost every packet. Pure memoization — hits return the exact
    /// `Time` a fresh computation would. `u32::MAX` marks an empty
    /// entry (no packet is 4 GiB).
    tx_memo: [(u32, Time); 2],
    stats: LinkStats,
}

/// What happened when a packet was offered to the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// Enqueued; the serializer was already busy.
    Queued,
    /// The serializer was idle: start transmitting now. The engine must
    /// schedule the dequeue event returned by [`Link::begin_tx`].
    StartTx,
    /// Dropped: the buffer was full.
    Dropped,
}

impl Link {
    /// Creates an idle link.
    pub fn new(config: LinkConfig) -> Self {
        Link {
            config,
            queue: VecDeque::new(),
            queued_bytes: 0,
            busy: false,
            red_avg: 0.0,
            red_count: 0,
            cur_tx: Time::ZERO,
            tx_memo: [(u32::MAX, Time::ZERO); 2],
            stats: LinkStats::default(),
        }
    }

    /// [`Time::tx_time`] at this link's rate, memoized by size.
    // lint:hot-path
    fn tx_time_cached(&mut self, bytes: u32) -> Time {
        let (size0, tx0) = self.tx_memo[0];
        if size0 == bytes {
            return tx0;
        }
        let (size1, tx1) = self.tx_memo[1];
        if size1 == bytes {
            self.tx_memo.swap(0, 1);
            return tx1;
        }
        let t = Time::tx_time(bytes, self.config.rate_bps);
        self.tx_memo[1] = self.tx_memo[0];
        self.tx_memo[0] = (bytes, t);
        t
    }

    /// RED early-drop decision for the current (pre-enqueue) state.
    fn red_drops(&mut self) -> bool {
        let Aqm::Red {
            min_th,
            max_th,
            max_p,
            weight,
        } = self.config.aqm
        else {
            return false;
        };
        self.red_avg = (1.0 - weight) * self.red_avg + weight * self.queue.len() as f64;
        if self.red_avg < min_th {
            self.red_count = 0;
            return false;
        }
        if self.red_avg >= max_th {
            self.red_count = 0;
            return true;
        }
        // Drop probability ramps linearly between the thresholds; a
        // deterministic 1-in-round(1/p) counter replaces the uniform
        // draw (ns2's count-based variant spreads drops similarly).
        let p = max_p * (self.red_avg - min_th) / (max_th - min_th);
        let interval = (1.0 / p.max(1e-9)).round().max(1.0) as u64;
        self.red_count += 1;
        if self.red_count >= interval {
            self.red_count = 0;
            true
        } else {
            false
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Bytes currently waiting in the buffer (excluding the packet in the
    /// serializer).
    pub fn queued_bytes(&self) -> u32 {
        self.queued_bytes
    }

    /// Packets currently waiting.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Offers a packet to the link at time `now`.
    // lint:hot-path
    pub fn offer(&mut self, packet: Packet, now: Time) -> Offer {
        self.stats.offered += 1;
        if !self.busy && self.queue.is_empty() {
            // An idle link never early-drops (avg decays toward 0 while
            // the queue is empty; ns2 likewise lets the first packet by).
            self.red_avg *= 0.5;
            Offer::StartTx
        } else if self.red_drops() {
            self.stats.drops += 1;
            Offer::Dropped
        } else if self.queue.len() < self.config.buffer_packets as usize {
            self.queued_bytes += packet.size;
            // lint:allow(hot-path-alloc): VecDeque is bounded by buffer_packets, keeps capacity
            self.queue.push_back(Queued {
                packet,
                enqueued_at: now,
            });
            Offer::Queued
        } else {
            self.stats.drops += 1;
            Offer::Dropped
        }
    }

    /// Starts serializing `packet` (after [`Offer::StartTx`]); returns
    /// when serialization completes.
    // lint:hot-path
    pub fn begin_tx(&mut self, packet: &Packet, now: Time) -> Time {
        debug_assert!(!self.busy, "begin_tx on a busy link");
        self.busy = true;
        // lint:allow(hot-path-alloc): Summary::push is constant-size streaming arithmetic, no heap
        self.stats.queue_delay.push(0.0);
        self.cur_tx = self.tx_time_cached(packet.size);
        now + self.cur_tx
    }

    /// Completes the current serialization at time `now`; accounts the
    /// transmitted packet and, if more packets wait, dequeues the next and
    /// returns it with its serialization-completion time.
    // lint:hot-path
    pub fn finish_tx(&mut self, sent: &Packet, now: Time) -> Option<(Packet, Time)> {
        debug_assert!(self.busy, "finish_tx on an idle link");
        self.stats.packets_out += 1;
        self.stats.bytes_out += sent.size as u64;
        debug_assert!(self.cur_tx == Time::tx_time(sent.size, self.config.rate_bps));
        self.stats.busy += self.cur_tx;
        self.busy = false;
        if let Some(next) = self.queue.pop_front() {
            self.queued_bytes -= next.packet.size;
            self.busy = true;
            let delay_s = (now - next.enqueued_at).as_secs_f64();
            // lint:allow(hot-path-alloc): Summary::push is constant-size streaming arithmetic
            self.stats.queue_delay.push(delay_s);
            self.cur_tx = self.tx_time_cached(next.packet.size);
            let done = now + self.cur_tx;
            Some((next.packet, done))
        } else {
            None
        }
    }

    /// Propagation delay of this link.
    pub fn delay(&self) -> Time {
        self.config.delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EndpointId;
    use crate::packet::{Payload, Route};

    fn pkt(size: u32) -> Packet {
        Packet {
            size,
            src: EndpointId(0),
            dst: EndpointId(1),
            route: Route::direct(LinkId(0)),
            hop_index: 0,
            payload: Payload::Raw,
        }
    }

    fn link(rate: f64, buffer_packets: u32) -> Link {
        Link::new(LinkConfig::new(rate, Time::from_millis(10), buffer_packets))
    }

    #[test]
    fn idle_link_starts_transmitting_immediately() {
        let mut l = link(8e6, 10);
        assert_eq!(l.offer(pkt(1000), Time::ZERO), Offer::StartTx);
        let done = l.begin_tx(&pkt(1000), Time::ZERO);
        // 1000 B at 8 Mbps = 1 ms.
        assert_eq!(done, Time::from_millis(1));
    }

    #[test]
    fn busy_link_queues() {
        let mut l = link(8e6, 10);
        l.offer(pkt(1000), Time::ZERO);
        l.begin_tx(&pkt(1000), Time::ZERO);
        assert_eq!(l.offer(pkt(500), Time::ZERO), Offer::Queued);
        assert_eq!(l.queue_len(), 1);
        assert_eq!(l.queued_bytes(), 500);
    }

    #[test]
    fn full_buffer_drops_from_tail() {
        // One-packet buffer: serializer + 1 queued, the rest dropped —
        // and a tiny 41-byte probe is dropped exactly like a big packet.
        let mut l = link(8e6, 1);
        l.offer(pkt(800), Time::ZERO);
        l.begin_tx(&pkt(800), Time::ZERO);
        assert_eq!(l.offer(pkt(900), Time::ZERO), Offer::Queued);
        assert_eq!(l.offer(pkt(41), Time::ZERO), Offer::Dropped);
        assert_eq!(l.stats().drops, 1);
        assert_eq!(l.stats().offered, 3);
        assert!((l.stats().drop_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn finish_tx_chains_to_next_packet() {
        let mut l = link(8e6, 10);
        let first = pkt(1000);
        l.offer(first, Time::ZERO);
        l.begin_tx(&first, Time::ZERO);
        l.offer(pkt(2000), Time::ZERO);
        let t1 = Time::from_millis(1);
        let (next, done) = l.finish_tx(&first, t1).expect("queued packet");
        assert_eq!(next.size, 2000);
        assert_eq!(done, Time::from_millis(3)); // 2000 B at 8 Mbps = 2 ms
        assert_eq!(l.stats().packets_out, 1);
        assert_eq!(l.stats().bytes_out, 1000);
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let mut l = link(8e6, 10);
        let p = pkt(1000);
        l.offer(p, Time::ZERO);
        l.begin_tx(&p, Time::ZERO);
        assert!(l.finish_tx(&p, Time::from_millis(1)).is_none());
        // 1 ms busy out of 10 ms elapsed.
        let u = l.stats().utilization(Time::from_millis(10));
        assert!((u - 0.1).abs() < 1e-9);
    }

    #[test]
    fn queue_delay_is_recorded() {
        let mut l = link(8e6, 10);
        let p = pkt(1000);
        l.offer(p, Time::ZERO);
        l.begin_tx(&p, Time::ZERO);
        l.offer(pkt(1000), Time::ZERO);
        l.finish_tx(&p, Time::from_millis(1));
        // Second packet waited 1 ms.
        assert!((l.stats().queue_delay.max() - 0.001).abs() < 1e-9);
    }

    #[test]
    fn bdp_helpers() {
        let cfg = LinkConfig::new(10e6, Time::from_millis(10), 67);
        // 10 Mbps × 80 ms RTT = 100 kB ≈ 66 packets of 1500 B.
        assert_eq!(cfg.bdp_bytes(Time::from_millis(80)), 100_000);
        assert_eq!(
            LinkConfig::bdp_packets(10e6, Time::from_millis(80), 1500),
            66
        );
        // The floor of 2 packets applies on tiny BDPs.
        assert_eq!(
            LinkConfig::bdp_packets(64e3, Time::from_millis(10), 1500),
            2
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = LinkConfig::new(0.0, Time::ZERO, 1);
    }
}

#[cfg(test)]
mod red_tests {
    use super::*;
    use crate::engine::EndpointId;
    use crate::packet::{Payload, Route};

    fn pkt(size: u32) -> Packet {
        Packet {
            size,
            src: EndpointId(0),
            dst: EndpointId(1),
            route: Route::direct(LinkId(0)),
            hop_index: 0,
            payload: Payload::Raw,
        }
    }

    fn red_link(buffer: u32) -> Link {
        Link::new(LinkConfig::new(8e6, Time::from_millis(10), buffer).with_red())
    }

    #[test]
    fn red_defaults_scale_with_buffer() {
        let Aqm::Red {
            min_th,
            max_th,
            max_p,
            weight,
        } = Aqm::red_for_buffer(30)
        else {
            panic!("expected RED");
        };
        assert!((max_th - 24.0).abs() < 1e-9);
        assert!((min_th - 8.0).abs() < 1e-9);
        assert_eq!(max_p, 0.1);
        assert_eq!(weight, 0.002);
    }

    #[test]
    fn red_drops_early_under_sustained_backlog() {
        // Keep the queue near-full long enough for the EWMA to rise past
        // min_th: early drops must appear even though the buffer never
        // hard-overflows.
        let mut l = red_link(30);
        let p = pkt(1000);
        l.offer(p, Time::ZERO);
        l.begin_tx(&p, Time::ZERO);
        let mut dropped = 0;
        let mut t = Time::ZERO;
        for i in 0..20_000 {
            // Alternate: one arrival, one service, queue hovering ~25.
            if l.queue_len() < 25 && matches!(l.offer(pkt(1000), t), Offer::Dropped) {
                dropped += 1;
            }
            if i % 2 == 0 {
                l.finish_tx(&p, t);
                if !l.queue.is_empty() {
                    // finish_tx already dequeued the next packet.
                }
            }
            t += Time::from_micros(500);
        }
        assert!(dropped > 0, "RED must early-drop under sustained backlog");
        // And the queue itself never hard-overflowed (30-packet buffer,
        // arrivals capped at 25).
        assert!(l.queue_len() <= 30);
    }

    #[test]
    fn red_passes_everything_at_low_occupancy() {
        let mut l = red_link(30);
        let p = pkt(1000);
        l.offer(p, Time::ZERO);
        l.begin_tx(&p, Time::ZERO);
        // Never more than 2 queued: avg stays below min_th = 8.
        for i in 0..1000 {
            assert_ne!(l.offer(pkt(1000), Time::from_millis(i)), Offer::Dropped);
            l.finish_tx(&p, Time::from_millis(i));
        }
        assert_eq!(l.stats().drops, 0);
    }

    #[test]
    fn droptail_default_is_unchanged() {
        let cfg = LinkConfig::new(8e6, Time::from_millis(10), 10);
        assert_eq!(cfg.aqm, Aqm::DropTail);
    }
}
