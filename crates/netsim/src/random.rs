//! Inverse-transform samplers for the distributions the workload models
//! need.
//!
//! Implemented directly over [`rand::Rng`] rather than pulling in
//! `rand_distr`: three one-line transforms do not justify a dependency,
//! and keeping them here makes their exact form (and hence the
//! simulation's reproducibility) part of this crate's contract.

use rand::{Rng, RngExt};

/// Samples an exponential variate with the given `mean` (> 0).
///
/// Used for Poisson cross-traffic interarrivals and off-period durations.
///
/// # Panics
///
/// Panics (debug) on a non-positive mean.
pub fn exponential<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    debug_assert!(mean > 0.0, "exponential mean must be positive");
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    -mean * u.ln()
}

/// Samples a Pareto variate with shape `alpha` (> 0) and scale `xmin`
/// (> 0): `P(X > x) = (xmin/x)^alpha` for `x ≥ xmin`.
///
/// With `1 < alpha < 2` the distribution has finite mean `alpha·xmin/
/// (alpha−1)` but infinite variance — the heavy-tailed on-periods that
/// make cross traffic bursty at many time scales.
///
/// # Panics
///
/// Panics (debug) on non-positive parameters.
pub fn pareto<R: Rng>(rng: &mut R, alpha: f64, xmin: f64) -> f64 {
    debug_assert!(alpha > 0.0, "pareto shape must be positive");
    debug_assert!(xmin > 0.0, "pareto scale must be positive");
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    xmin / u.powf(1.0 / alpha)
}

/// Scale for a Pareto with shape `alpha > 1` to achieve a target `mean`:
/// `xmin = mean·(alpha−1)/alpha`.
pub fn pareto_scale_for_mean(alpha: f64, mean: f64) -> f64 {
    debug_assert!(alpha > 1.0, "mean undefined for alpha ≤ 1");
    mean * (alpha - 1.0) / alpha
}

/// Samples a log-normal variate given the `median` and the σ of the
/// underlying normal. Used for heterogeneous per-path parameter draws in
/// the synthetic testbed (capacities, RTTs, load levels).
pub fn log_normal<R: Rng>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    debug_assert!(median > 0.0, "log-normal median must be positive");
    // Box–Muller.
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    let z: f64 = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    median * (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng();
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut r, 3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(exponential(&mut r, 0.001) > 0.0);
        }
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(pareto(&mut r, 1.5, 2.0) >= 2.0);
        }
    }

    #[test]
    fn pareto_mean_converges_for_alpha_above_two() {
        // alpha = 3 has finite variance, so the sample mean converges fast.
        let mut r = rng();
        let alpha = 3.0;
        let xmin = pareto_scale_for_mean(alpha, 5.0);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| pareto(&mut r, alpha, xmin)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_tail_is_heavier_than_exponential() {
        let mut r = rng();
        let n = 100_000;
        let threshold = 20.0; // 20× the mean of 1.0
        let exp_exceed = (0..n)
            .filter(|_| exponential(&mut r, 1.0) > threshold)
            .count();
        let xmin = pareto_scale_for_mean(1.5, 1.0);
        let par_exceed = (0..n)
            .filter(|_| pareto(&mut r, 1.5, xmin) > threshold)
            .count();
        assert!(
            par_exceed > 10 * exp_exceed.max(1),
            "pareto {par_exceed} vs exp {exp_exceed}"
        );
    }

    #[test]
    fn log_normal_median_converges() {
        let mut r = rng();
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n).map(|_| log_normal(&mut r, 10.0, 0.5)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        assert!((median - 10.0).abs() < 0.3, "median {median}");
    }

    #[test]
    fn samplers_are_deterministic_under_seed() {
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(exponential(&mut a, 2.0), exponential(&mut b, 2.0));
        }
    }
}
